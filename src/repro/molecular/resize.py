"""Dynamic partition resizing: Algorithm 1 and its trigger schemes.

The paper's section 3.4 in executable form. Per application partition,
each resize decision does::

    if miss rate > 50%:                 # panic branch
        max_allocation = min(max_allocation, last_allocation)
        grow by max_allocation
    elif miss rate < goal:
        withdraw sqrt(current * miss_rate / goal) molecules   # conservative
    elif miss rate < last miss rate:    # linear model, only while improving
        target = current * miss_rate / goal
        grow by min(target - current, max_allocation)

and afterwards the resize period adapts: doubled when the overall miss
rate meets the goal, cut to 10 % when it does not (clamped to
``[period_floor, period_cap]``).

Interpretation choices (documented in DESIGN.md section 4): ``resize(n)``
grows *toward a target* with the step capped by ``max_allocation``;
``withdraw(n)`` removes ``n`` molecules; ``last_allocation`` is the size
of the previous grant, and the panic branch's clamp only applies once a
grant has happened. *Where* molecules are added or withdrawn is delegated
to the placement policy (per-molecule counters for Random, per-row
counters for Randy — exactly the paper's pairing).

The paper schedules this computation on a processor via an OS daemon
(~1500 cycles per application); we run it synchronously and account the
cycles in :class:`~repro.molecular.stats.MolecularStats`.

*Deciding* and *applying* a capacity change are separate concerns: the
:class:`Resizer` owns the former (Algorithm 1, triggers, periods, the
resize log), while a :class:`ResizeMechanism` owns the latter — how
granted molecules are attached and withdrawn molecules emptied. The
default :class:`FlushMechanism` is the paper's behaviour (withdrawal
flushes the molecule whole); :mod:`repro.molecular.chash` plugs in a
consistent-hashing backend that migrates resident lines instead
(DESIGN.md section 13).
"""

from __future__ import annotations

import math

from repro.common.clock import tick
from repro.common.errors import ConfigError
from repro.molecular.config import ResizePolicy
from repro.molecular.region import CacheRegion
from repro.telemetry.events import (
    MoleculeGranted,
    MoleculeWithdrawn,
    RegionRepaired,
    ResizeDecision,
)

#: Cycles one resize() computation costs per application (paper estimate).
RESIZE_COMPUTE_CYCLES = 1_500


def algorithm1_step(
    miss_rate: float,
    goal: float,
    current: int,
    last_miss_rate: float,
    max_allocation: int,
    last_allocation: int,
    min_units: int = 1,
    panic_miss_rate: float = 0.5,
    withdraw_margin: float = 1.0,
    grow_when_worsening: bool = False,
) -> tuple[str, int, int]:
    """One Algorithm-1 decision as a pure function of the window's numbers.

    Returns ``(action, amount, new_max_allocation)`` where ``action`` is
    ``"grow"``, ``"withdraw"`` or ``"hold"`` and ``new_max_allocation``
    carries the panic branch's clamp back to the caller's state. Units
    are whatever the caller partitions in — molecules for the
    :class:`Resizer`, block quanta for the tenant-granularity policy in
    :mod:`repro.tenants.policies` — which is exactly why the arithmetic
    lives outside the engine.
    """
    if miss_rate > panic_miss_rate:
        if 0 < last_allocation < max_allocation:
            max_allocation = last_allocation
        return ("grow", max_allocation, max_allocation)
    if miss_rate < goal:
        if goal > 0 and miss_rate < goal * withdraw_margin:
            amount = int(round(math.sqrt(current * miss_rate / goal)))
        else:
            amount = 0
        amount = min(amount, current - min_units)
        if amount > 0:
            return ("withdraw", amount, max_allocation)
        return ("hold", 0, max_allocation)
    if miss_rate < last_miss_rate or grow_when_worsening:
        target = math.ceil(current * miss_rate / goal) if goal > 0 else current
        amount = min(target - current, max_allocation)
        if amount > 0:
            return ("grow", amount, max_allocation)
    return ("hold", 0, max_allocation)


class ResizeMechanism:
    """How the resize engine applies a capacity change to a region.

    The base class owns the mechanism-independent skeleton — allocating
    from Ulmo, attaching via the placement policy, the grant/denied log
    entries and their telemetry — and exposes three hooks:

    * :meth:`_choose_victim` — pick the molecule one withdrawal step
      vacates. The base implementation defers to the placement policy;
      the chash backend picks the cheapest slice to displace.
    * :meth:`_reclaim` — empty one withdrawn molecule and return
      ``(writebacks, moved)``. The base implementation is the paper's
      flush (every resident line dropped, dirty lines written back).
    * :meth:`_after_growth` — run after molecules were granted (growth
      or repair); the chash backend migrates remapped blocks here.
    * :meth:`_after_withdraw` — run after a withdrawal that removed at
      least one molecule; the chash backend emits its remap telemetry.

    Log entries, stats updates and telemetry emissions happen in the
    same order as the pre-interface resizer, so the flush backend stays
    byte-identical to it.
    """

    name = "flush"

    def __init__(self, resizer: "Resizer") -> None:
        self.resizer = resizer
        self.cache = resizer.cache
        self.policy = resizer.policy

    # ------------------------------------------------------------- growth

    def grow(self, region: CacheRegion, amount: int, total_accesses: int) -> None:
        """Grow ``region`` by up to ``amount`` molecules (Algorithm 1)."""
        if amount <= 0:
            return
        cache = self.cache
        cluster = cache.cluster_of_tile(region.home_tile_id)
        granted = cluster.ulmo.allocate(region.asid, amount, region.home_tile_id)
        for molecule in granted:
            row = cache.placement.add_row_index(region)
            region.add_molecule(molecule, row)
        if granted:
            region.last_allocation = len(granted)
            cache.stats.molecules_granted += len(granted)
            self.resizer.log.append(
                (total_accesses, region.asid, "grow", len(granted))
            )
            bus = getattr(cache, "telemetry", None)
            if bus is not None:
                bus.emit(
                    MoleculeGranted(
                        accesses=total_accesses,
                        asid=region.asid,
                        count=len(granted),
                        tiles=sorted({m.tile_id for m in granted}),
                        molecules=region.molecule_count,
                    )
                )
            self._after_growth(region, granted, total_accesses, "grow")
        else:
            self.resizer.log.append(
                (total_accesses, region.asid, "grow-denied", amount)
            )

    def repair(self, region: CacheRegion, total_accesses: int) -> None:
        """Replace molecules lost to hard faults since the last epoch.

        Runs before Algorithm 1's decision so the decision sees a region
        restored (as far as the free pool allows) to its pre-fault size.
        Repair grants do not touch ``last_allocation`` — they are capacity
        restoration, not Algorithm 1 growth, so the panic branch's clamp
        must not learn from them. Partial grants leave the remainder
        pending for the next epoch.
        """
        wanted = region.pending_repair
        if wanted <= 0:
            return
        cache = self.cache
        cluster = cache.cluster_of_tile(region.home_tile_id)
        granted = cluster.ulmo.allocate(region.asid, wanted, region.home_tile_id)
        for molecule in granted:
            row = cache.placement.add_row_index(region)
            region.add_molecule(molecule, row)
        if granted:
            region.pending_repair -= len(granted)
            cache.stats.molecules_repaired += len(granted)
            self.resizer.log.append(
                (total_accesses, region.asid, "repair", len(granted))
            )
            bus = getattr(cache, "telemetry", None)
            if bus is not None:
                bus.emit(
                    RegionRepaired(
                        accesses=total_accesses,
                        asid=region.asid,
                        requested=wanted,
                        granted=len(granted),
                        tiles=sorted({m.tile_id for m in granted}),
                        molecules=region.molecule_count,
                    )
                )
            self._after_growth(region, granted, total_accesses, "repair")
        else:
            self.resizer.log.append(
                (total_accesses, region.asid, "repair-denied", wanted)
            )

    # --------------------------------------------------------- withdrawal

    def withdraw(self, region: CacheRegion, amount: int, total_accesses: int) -> None:
        """Withdraw up to ``amount`` molecules, respecting the floor."""
        withdrawn = 0
        dirty_flushed = 0
        moved_total = 0
        for _ in range(amount):
            if region.molecule_count <= self.policy.min_molecules:
                break
            molecule = self._choose_victim(region)
            writebacks, moved = self._reclaim(region, molecule)
            dirty_flushed += writebacks
            moved_total += moved
            withdrawn += 1
        if withdrawn:
            self.cache.stats.molecules_withdrawn += withdrawn
            self.resizer.log.append(
                (total_accesses, region.asid, "withdraw", withdrawn)
            )
            bus = getattr(self.cache, "telemetry", None)
            if bus is not None:
                bus.emit(
                    MoleculeWithdrawn(
                        accesses=total_accesses,
                        asid=region.asid,
                        count=withdrawn,
                        writebacks=dirty_flushed,
                        molecules=region.molecule_count,
                    )
                )
            self._after_withdraw(
                region, withdrawn, moved_total, dirty_flushed, total_accesses
            )
        else:
            # A fully denied withdrawal (floor reached, or the placement
            # policy had nothing to give) used to vanish from the log,
            # leaving inspect timelines asymmetric with grow-denied.
            self.resizer.log.append(
                (total_accesses, region.asid, "withdraw-denied", amount)
            )

    # -------------------------------------------------------------- hooks

    def _choose_victim(self, region: CacheRegion):
        """The molecule to vacate for one withdrawal step.

        The flush backend defers to the placement policy (the paper's
        rule: withdraw where the miss counters say the least data
        lives); the chash backend overrides this to minimise
        displacement instead.
        """
        return self.cache.placement.choose_withdrawal(region)

    def _reclaim(self, region: CacheRegion, molecule) -> tuple[int, int]:
        """Empty one withdrawn molecule; return ``(writebacks, moved)``.

        The flush behaviour: detach (dropping every resident line),
        release the molecule to the free pool, write dirty lines back.
        """
        flushed = region.detach_molecule(molecule)
        tile = self.cache.tile_of(molecule.tile_id)
        tile.release(molecule)
        dirty = 0
        for block, was_dirty in flushed:
            if was_dirty:
                dirty += 1
            self.cache.placement.on_evict(region, block)
        self.cache.stats.writebacks_to_memory += dirty
        self.cache.stats.flush_writebacks += dirty
        # Every resident line was displaced from its home molecule: the
        # clean ones are refetched from memory on next use, the dirty
        # ones additionally cross the bus now (flush_writebacks above).
        self.cache.stats.resize_blocks_moved += len(flushed)
        return dirty, 0

    def _after_growth(
        self, region: CacheRegion, granted: list, total_accesses: int, action: str
    ) -> None:
        """Post-grant hook (``action`` is ``"grow"`` or ``"repair"``)."""

    def _after_withdraw(
        self,
        region: CacheRegion,
        withdrawn: int,
        moved: int,
        writebacks: int,
        total_accesses: int,
    ) -> None:
        """Post-withdrawal hook (only runs when molecules were removed)."""


class FlushMechanism(ResizeMechanism):
    """The paper's mechanism: withdrawn molecules are flushed whole."""


def make_resize_mechanism(name: str, resizer: "Resizer") -> ResizeMechanism:
    """Build a resize mechanism by name (``flush`` / ``chash``)."""
    if name == "flush":
        return FlushMechanism(resizer)
    if name == "chash":
        from repro.molecular.chash import ConsistentHashMechanism

        return ConsistentHashMechanism(resizer)
    raise ConfigError(
        f"unknown resize mechanism {name!r}; expected 'flush' or 'chash'"
    )


class Resizer:
    """Drives Algorithm 1 for every managed region of a molecular cache."""

    __slots__ = (
        "cache",
        "policy",
        "global_period",
        "next_global_at",
        "log",
        "advisor",
        "mechanism",
    )

    def __init__(self, cache, policy: ResizePolicy) -> None:
        self.cache = cache
        self.policy = policy
        self.global_period = policy.period
        self.next_global_at = policy.period
        #: Chronicle of (access_count, asid, action, amount) tuples for
        #: diagnostics and the resize-behaviour tests.
        self.log: list[tuple[int, int, str, int]] = []
        self.advisor = None
        if policy.advisor == "stack":
            from repro.molecular.advisor import StackDistanceAdvisor

            self.advisor = StackDistanceAdvisor(
                cache.config.lines_per_molecule
            )
        self.mechanism = make_resize_mechanism(policy.mechanism, self)

    # ------------------------------------------------------------ triggers

    def register_region(self, region: CacheRegion) -> None:
        """Initialise Algorithm 1 state for a newly assigned region."""
        region.max_allocation = self.policy.max_allocation
        region.last_allocation = region.molecule_count
        region.last_miss_rate = 1.0
        region.resize_period = self.policy.period
        region.next_resize_at = region.total_accesses + self.policy.period

    def on_access(
        self, total_accesses: int, region: CacheRegion, block: int | None = None
    ) -> None:
        """Called by the cache after every access; fires due resizes."""
        if self.advisor is not None and block is not None:
            self.advisor.observe(region, block)
        if self.policy.trigger == "per_app_adaptive":
            if region.goal is not None and region.total_accesses >= region.next_resize_at:
                self._resize_one(region, total_accesses)
        else:
            if total_accesses >= self.next_global_at:
                self._resize_all(total_accesses)

    # ------------------------------------------------------- global round

    def _managed_regions(self) -> list[CacheRegion]:
        return [r for r in self.cache.regions.values() if r.goal is not None]

    def _resize_all(self, total_accesses: int) -> None:
        # Resize rounds are rare and expensive, so the profiler times
        # every fire exactly instead of sampling (repro.prof).
        profiler = getattr(self.cache, "profiler", None)
        started = tick() if profiler is not None and profiler.enabled else None
        regions = self._managed_regions()
        for region in regions:
            self._repair(region, total_accesses)
        for region in regions:
            self._decide(region, total_accesses)

        if self.policy.trigger == "global_adaptive":
            overall = self.cache.stats.window_miss_rate()
            goal = self._aggregate_goal(regions)
            # An idle round (every managed window empty) carries no
            # signal: hold the period instead of treating "0.0 < 0.0"
            # as a missed goal and slashing it 10x.
            if goal is None:
                pass
            elif overall < goal:
                self.global_period = min(self.global_period * 2, self.policy.period_cap)
            else:
                self.global_period = max(
                    int(self.global_period * 0.1), self.policy.period_floor
                )

        for region in regions:
            region.reset_window()
            self.cache.placement.reset_counters(region)
        self.cache.stats.reset_window()
        self.next_global_at = total_accesses + self.global_period
        self.cache.stats.resize_events += 1
        self.cache.stats.resize_compute_cycles += RESIZE_COMPUTE_CYCLES * len(regions)
        # A round resets stats windows even for regions whose membership
        # did not change, so every cached access context is stale.
        self.cache._ctx_epoch += 1
        if started is not None:
            profiler.add_resize(tick() - started)

    def _aggregate_goal(self, regions: list[CacheRegion]) -> float | None:
        """Access-weighted mean goal — the "overall miss rate goal".

        Returns ``None`` when every managed region's window was empty:
        there is no miss-rate evidence to adapt the period on.
        """
        weighted = 0.0
        accesses = 0
        for region in regions:
            weighted += (region.goal or 0.0) * region.window_accesses
            accesses += region.window_accesses
        if accesses == 0:
            return None
        return weighted / accesses

    # ------------------------------------------------- per-app round

    def _resize_one(self, region: CacheRegion, total_accesses: int) -> None:
        profiler = getattr(self.cache, "profiler", None)
        started = tick() if profiler is not None and profiler.enabled else None
        self._repair(region, total_accesses)
        self._decide(region, total_accesses)
        if region.goal is not None:
            if region.window_miss_rate < region.goal:
                region.resize_period = min(
                    region.resize_period * 2, self.policy.period_cap
                )
            else:
                region.resize_period = max(
                    int(region.resize_period * 0.1), self.policy.period_floor
                )
        region.reset_window()
        self.cache.placement.reset_counters(region)
        region.next_resize_at = region.total_accesses + region.resize_period
        self.cache.stats.resize_events += 1
        self.cache.stats.resize_compute_cycles += RESIZE_COMPUTE_CYCLES
        self.cache._ctx_epoch += 1
        if started is not None:
            profiler.add_resize(tick() - started)

    # ---------------------------------------------------------- Algorithm 1

    def _decide(self, region: CacheRegion, total_accesses: int) -> None:
        if region.goal is None:
            return
        if region.window_accesses < self.policy.min_window_refs:
            return
        miss_rate = region.window_miss_rate
        current = region.molecule_count
        goal = region.goal
        log_mark = len(self.log)

        if self.advisor is not None and miss_rate <= self.policy.panic_miss_rate:
            target = self.advisor.effective_target(region)
            if target is not None:
                if miss_rate > goal:
                    if current < target:
                        amount = min(target - current, region.max_allocation)
                        self._grow(region, amount, total_accesses)
                    else:
                        # Holding the sized capacity yet missing the goal:
                        # the ideal-LRU model underestimates this region's
                        # placement overhead — learn, and keep growing.
                        self.advisor.note_underestimate(region.asid)
                        self._grow(
                            region, region.max_allocation, total_accesses
                        )
                elif miss_rate < goal * self.policy.withdraw_margin:
                    if current > target:
                        amount = min(
                            current - target,
                            region.max_allocation,
                            current - self.policy.min_molecules,
                        )
                        if amount > 0:
                            self._withdraw(region, amount, total_accesses)
                    else:
                        self.advisor.note_overestimate(region.asid)
                region.last_miss_rate = miss_rate
                self._emit_decision(region, total_accesses, miss_rate, log_mark)
                return
            # not enough samples yet: fall through to the linear model

        action, amount, new_max = algorithm1_step(
            miss_rate,
            goal,
            current,
            region.last_miss_rate,
            region.max_allocation,
            region.last_allocation,
            min_units=self.policy.min_molecules,
            panic_miss_rate=self.policy.panic_miss_rate,
            withdraw_margin=self.policy.withdraw_margin,
            grow_when_worsening=self.policy.grow_when_worsening,
        )
        region.max_allocation = new_max
        if action == "grow":
            self._grow(region, amount, total_accesses)
        elif action == "withdraw":
            self._withdraw(region, amount, total_accesses)
        region.last_miss_rate = miss_rate
        self._emit_decision(region, total_accesses, miss_rate, log_mark)

    def _emit_decision(
        self,
        region: CacheRegion,
        total_accesses: int,
        miss_rate: float,
        log_mark: int,
    ) -> None:
        """Publish the branch Algorithm 1 just took (telemetry only)."""
        bus = getattr(self.cache, "telemetry", None)
        if bus is None:
            return
        if len(self.log) > log_mark:
            _, _, action, amount = self.log[-1]
        else:
            action, amount = "hold", 0
        if self.policy.trigger == "per_app_adaptive":
            period = region.resize_period
        else:
            period = self.global_period
        bus.emit(
            ResizeDecision(
                accesses=total_accesses,
                asid=region.asid,
                action=action,
                amount=amount,
                window_miss_rate=miss_rate,
                molecules=region.molecule_count,
                period=period,
            )
        )

    # ------------------------------------------------------------- actions
    #
    # Thin delegates: the decision layer (and a handful of tests) call
    # these; the configured ResizeMechanism applies the change.

    def _repair(self, region: CacheRegion, total_accesses: int) -> None:
        self.mechanism.repair(region, total_accesses)

    def _grow(self, region: CacheRegion, amount: int, total_accesses: int) -> None:
        self.mechanism.grow(region, amount, total_accesses)

    def _withdraw(self, region: CacheRegion, amount: int, total_accesses: int) -> None:
        self.mechanism.withdraw(region, amount, total_accesses)

    def force_resize(self) -> None:
        """Run a resize round immediately (test/diagnostic hook)."""
        if self.policy.trigger == "per_app_adaptive":
            for region in self._managed_regions():
                self._resize_one(region, self.cache.stats.total.accesses)
        else:
            self._resize_all(self.cache.stats.total.accesses)

    def check_consistency(self) -> None:
        """Raise if any cache bookkeeping is inconsistent (test hook).

        Delegates to the full-state auditor (:mod:`repro.audit.invariants`),
        which absorbed and extended the original tile-index check; the
        :class:`~repro.audit.invariants.AuditError` it raises is a
        :class:`~repro.common.errors.SimulationError`, so existing callers
        are unaffected.
        """
        from repro.audit.invariants import assert_invariants

        assert_invariants(self.cache)
