"""Human-readable views of molecular-cache internals.

Debug/teaching aids: render a region's replacement view (the 2-D sparse
matrix of Figure 4) with per-row miss counters and occupancy, and a tile
map of a whole cache showing molecule ownership.
"""

from __future__ import annotations

from repro.molecular.cache import MolecularCache
from repro.molecular.region import CacheRegion


def render_replacement_view(region: CacheRegion, max_rows: int | None = None) -> str:
    """ASCII rendering of a region's replacement view.

    One line per row: the molecules (id and occupancy percentage) plus the
    row's miss counter — the exact inputs Randy's resize placement uses.
    """
    lines = [
        f"region asid={region.asid} "
        f"(goal={region.goal}, {region.molecule_count} molecules, "
        f"{region.row_max} rows, line x{region.line_multiplier})"
    ]
    rows = region.rows if max_rows is None else region.rows[:max_rows]
    for index, row in enumerate(rows):
        cells = "  ".join(
            f"m{molecule.molecule_id}"
            f"[{100 * molecule.occupancy() // molecule.n_lines:3d}%]"
            for molecule in row
        )
        lines.append(
            f"  row {index:3d} (misses {region.row_misses[index]:5d}): {cells}"
        )
    if max_rows is not None and len(region.rows) > max_rows:
        lines.append(f"  ... {len(region.rows) - max_rows} more rows")
    return "\n".join(lines)


def render_tile_map(cache: MolecularCache) -> str:
    """Ownership map: one line per tile, one cell per molecule.

    Cells show the owning ASID, ``S`` for shared-bit molecules and ``.``
    for free ones — a quick view of how partitions occupy the physical
    organisation (Figure 2).
    """
    lines = [f"molecular cache: {cache.config.total_bytes >> 20}MB, "
             f"{len(cache.clusters)} cluster(s)"]
    for cluster in cache.clusters:
        lines.append(f"cluster {cluster.cluster_id} "
                     f"(free {cluster.free_count}/{cluster.molecule_count}):")
        for tile in cluster.tiles:
            cells = []
            for molecule in tile.molecules:
                if molecule.shared:
                    cells.append("S")
                elif molecule.is_free:
                    cells.append(".")
                else:
                    cells.append(str(molecule.asid))
            lines.append(f"  tile {tile.tile_id:3d}: {''.join(cells)}")
    return "\n".join(lines)
