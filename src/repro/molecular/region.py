"""Cache regions (partitions) and the replacement view.

A :class:`CacheRegion` is the set of molecules currently owned by one
application, organised two ways at once (paper Figure 4):

* the **access view** — where data physically lives. The simulator keeps a
  *presence map* ``block -> molecule`` so lookups are O(1); this is purely
  an accelerator, with contents identical to probing every owned molecule
  (a property test asserts the equivalence). Probe *energy* is charged
  architecturally by the cache front end, not here.
* the **replacement view** — a 2-D sparse matrix ``rows x (variable number
  of molecules)``. The placement policy picks the molecule for an
  incoming line from this view; rows may have different lengths, which is
  how a region gets *per-row (per-address-range) associativity*.

The region also owns the per-window statistics Algorithm 1 feeds on, the
per-row miss counters, and the variable line size (a power-of-two multiple
of the base line; the paper restricts a region to one line size fixed at
creation).
"""

from __future__ import annotations

from repro.common.bitops import is_power_of_two
from repro.common.errors import ConfigError, SimulationError
from repro.molecular.molecule import Molecule


class CacheRegion:
    """One application's cache partition.

    Parameters
    ----------
    asid:
        Owning application (or the shared-pool sentinel).
    goal:
        Miss-rate goal in [0, 1], or ``None`` for an unmanaged region that
        the resize engine leaves alone.
    home_tile_id:
        The tile of the owning application's processor; lookups probe this
        tile first (hierarchical search).
    line_multiplier:
        Region line size as a multiple of the base line (power of two).
        On a miss ``line_multiplier`` consecutive base lines are fetched
        into the same molecule and replaced as a unit; hits still operate
        on base lines (paper section 3.2).
    """

    __slots__ = (
        "asid",
        "goal",
        "home_tile_id",
        "line_multiplier",
        "rows",
        "row_misses",
        "presence",
        "molecules_by_tile",
        "_molecule_count",
        "_tile_order",
        "version",
        "content_version",
        "window_accesses",
        "window_misses",
        "total_accesses",
        "total_misses",
        "molecule_integral",
        "last_miss_rate",
        "last_allocation",
        "max_allocation",
        "resize_period",
        "next_resize_at",
        "pending_repair",
    )

    def __init__(
        self,
        asid: int,
        goal: float | None,
        home_tile_id: int,
        line_multiplier: int = 1,
    ) -> None:
        if goal is not None and not 0.0 <= goal <= 1.0:
            raise ConfigError(f"miss-rate goal must be in [0, 1], got {goal}")
        if not is_power_of_two(line_multiplier):
            raise ConfigError(
                f"line multiplier must be a power of two, got {line_multiplier}"
            )
        self.asid = asid
        self.goal = goal
        self.home_tile_id = home_tile_id
        self.line_multiplier = line_multiplier

        self.rows: list[list[Molecule]] = []
        self.row_misses: list[int] = []
        self.presence: dict[int, Molecule] = {}
        self.molecules_by_tile: dict[int, int] = {}
        self._molecule_count = 0
        self._tile_order: list[int] | None = None
        #: Monotonic membership/home-tile revision. Bumped by every event
        #: that changes what a lookup would probe (molecule added or
        #: withdrawn, home tile re-assigned); the access engine's cached
        #: per-region contexts compare it to decide whether their
        #: precomputed probe counts and search orders are still valid.
        self.version = 0
        #: Monotonic *contents* revision: bumped whenever the presence map
        #: changes (a unit installed, a molecule detached, a line dropped
        #: by a transient fault). The columnar engine's per-region mirror
        #: arrays key their validity on this; unlike :attr:`version` it
        #: moves on every miss, so consumers resync it themselves after
        #: mutations they performed (and mirrored) on their own.
        self.content_version = 0

        self.window_accesses = 0
        self.window_misses = 0
        self.total_accesses = 0
        self.total_misses = 0
        #: Sum over accesses of the region's molecule count — the integral
        #: that average-molecule-count, HPM and average-power need.
        self.molecule_integral = 0

        # --- Algorithm 1 state ------------------------------------------
        self.last_miss_rate = 1.0
        self.last_allocation = 0
        self.max_allocation = 0  # set by the resizer at assignment
        self.resize_period = 0  # used by the per-application trigger
        self.next_resize_at = 0
        #: Molecules lost to hard faults and not yet replaced; the resize
        #: engine tries to re-grow the region by this much at the start of
        #: each of its epochs (partial grants stay pending).
        self.pending_repair = 0

    # -------------------------------------------------------------- sizing

    @property
    def molecule_count(self) -> int:
        return self._molecule_count

    @property
    def row_max(self) -> int:
        """The replacement view's row count (the "configured way size")."""
        return len(self.rows)

    def molecules(self):
        for row in self.rows:
            yield from row

    # ------------------------------------------------------------- lookup

    def lookup(self, block: int) -> Molecule | None:
        """O(1) presence-map lookup (access view)."""
        return self.presence.get(block)

    def lookup_by_probe(self, block: int) -> Molecule | None:
        """Brute-force lookup probing every molecule (the architectural
        behaviour). Used by tests to validate the presence map."""
        for molecule in self.molecules():
            if molecule.probe(block):
                return molecule
        return None

    # ---------------------------------------------------------- accounting

    def record_access(self, hit: bool) -> None:
        self.window_accesses += 1
        self.total_accesses += 1
        if not hit:
            self.window_misses += 1
            self.total_misses += 1
        self.molecule_integral += self.molecule_count

    def reset_window(self) -> None:
        self.window_accesses = 0
        self.window_misses = 0

    @property
    def window_miss_rate(self) -> float:
        if self.window_accesses == 0:
            return 0.0
        return self.window_misses / self.window_accesses

    @property
    def miss_rate(self) -> float:
        if self.total_accesses == 0:
            return 0.0
        return self.total_misses / self.total_accesses

    @property
    def mean_molecules(self) -> float:
        """Time-averaged molecule count (denominator of HPM)."""
        if self.total_accesses == 0:
            return float(self.molecule_count)
        return self.molecule_integral / self.total_accesses

    def hits_per_molecule(self) -> float:
        """The paper's HPM metric: hit rate per time-averaged molecule."""
        if self.total_accesses == 0 or self.mean_molecules == 0:
            return 0.0
        hit_rate = 1.0 - self.miss_rate
        return hit_rate / self.mean_molecules

    def occupancy_fraction(self) -> float:
        """Fraction of the region's line slots holding valid data.

        Walks every molecule, so this is meant for epoch-boundary
        telemetry snapshots and diagnostics, not the per-access path.
        """
        capacity = used = 0
        for molecule in self.molecules():
            capacity += molecule.n_lines
            used += molecule.occupancy()
        return used / capacity if capacity else 0.0

    # ------------------------------------------------- replacement view ops

    def row_of(self, block: int, lines_per_molecule: int) -> int:
        """Replacement-view row for an address (paper's Randy expression).

        ``row = (address / molecule_size) mod row_max`` — with block
        numbers, ``address / molecule_size == block // lines_per_molecule``.
        """
        if not self.rows:
            raise SimulationError(f"region asid={self.asid} has no molecules")
        return (block // lines_per_molecule) % len(self.rows)

    def add_molecule(self, molecule: Molecule, row_index: int | None) -> None:
        """Attach a configured molecule at ``row_index`` (None = new row)."""
        if molecule.asid != self.asid and not molecule.shared:
            raise SimulationError(
                f"molecule {molecule.molecule_id} (asid {molecule.asid}) does "
                f"not belong to region asid {self.asid}"
            )
        if row_index is None:
            self.rows.append([molecule])
            self.row_misses.append(0)
        else:
            if not 0 <= row_index < len(self.rows):
                raise SimulationError(f"row index {row_index} out of range")
            self.rows[row_index].append(molecule)
        tile = molecule.tile_id
        self.molecules_by_tile[tile] = self.molecules_by_tile.get(tile, 0) + 1
        self._molecule_count += 1
        self.invalidate_search_order()

    def detach_molecule(self, molecule: Molecule) -> list[tuple[int, bool]]:
        """Remove a molecule from the view and flush it.

        Returns the flushed ``(block, dirty)`` pairs (for writeback
        accounting). Rows left empty are deleted — the replacement view's
        row count shrinks, remapping future replacements; resident lines in
        *other* molecules remain reachable because the access view is
        independent of the replacement view.
        """
        for row_index, row in enumerate(self.rows):
            if molecule in row:
                row.remove(molecule)
                if not row:
                    del self.rows[row_index]
                    del self.row_misses[row_index]
                break
        else:
            raise SimulationError(
                f"molecule {molecule.molecule_id} not in region asid {self.asid}"
            )
        tile = molecule.tile_id
        remaining = self.molecules_by_tile.get(tile, 0) - 1
        if remaining > 0:
            self.molecules_by_tile[tile] = remaining
        else:
            self.molecules_by_tile.pop(tile, None)
        self._molecule_count -= 1
        self.invalidate_search_order()
        flushed = molecule.flush()
        for block, _dirty in flushed:
            self.presence.pop(block, None)
        self.content_version += 1
        return flushed

    def move_block(self, block: int, target: Molecule) -> bool:
        """Migrate a resident ``block`` into ``target``'s direct-mapped slot.

        The chash resize mechanism's grow-side primitive: the line keeps
        its dirty bit and stays resident, so the move costs no memory
        traffic. Refuses (returns ``False``) when the block is absent,
        already home, or the target slot holds a different block — a
        remap never evicts resident data to make room.
        """
        source = self.presence.get(block)
        if source is None or source is target:
            return False
        index = target.index_of(block)
        occupant = target.lines[index]
        if occupant is not None and occupant != block:
            return False
        was_dirty = source.invalidate(block)
        target.fill(block, dirty=was_dirty)
        self.presence[block] = target
        self.content_version += 1
        return True

    def adopt_block(self, block: int, target: Molecule, dirty: bool) -> bool:
        """Re-install a line just detached from a withdrawn molecule.

        The chash mechanism's shrink-side primitive: ``block`` is no
        longer in the presence map (``detach_molecule`` flushed it) and
        moves into ``target`` only if the slot is empty — the caller
        decides whether to free a slot first (:meth:`drop_clean_line`)
        or spill to memory. Returns ``True`` when adopted.
        """
        if block in self.presence:
            return False
        index = target.index_of(block)
        if target.lines[index] is not None:
            return False
        target.fill(block, dirty=dirty)
        self.presence[block] = target
        self.content_version += 1
        return True

    def drop_clean_line(self, target: Molecule, index: int) -> int | None:
        """Invalidate ``target``'s line ``index`` if it is resident and
        clean, freeing the slot without a writeback — priced exactly
        like an ordinary replacement eviction of a clean line. Returns
        the dropped block (the caller owes it a placement ``on_evict``)
        or ``None`` when the slot is empty, dirty, or not this region's.
        """
        occupant = target.lines[index]
        if occupant is None or target.dirty[index]:
            return None
        if self.presence.get(occupant) is not target:
            return None
        target.invalidate(occupant)
        del self.presence[occupant]
        self.content_version += 1
        return occupant

    def invalidate_search_order(self) -> None:
        """Drop the cached Ulmo search order and bump :attr:`version`.

        Call after any change to the region's tile membership or home
        tile. Cached access contexts key their validity on ``version``,
        so this is also the hook that forces the batched engine to
        rebuild its per-region probe tables.
        """
        self._tile_order = None
        self.version += 1

    def contributing_tiles(self) -> list[int]:
        """Tiles holding at least one of this region's molecules, home first
        then ascending — the order Ulmo searches them. Cached between
        membership changes."""
        if self._tile_order is None:
            tiles = sorted(self.molecules_by_tile)
            if self.home_tile_id in self.molecules_by_tile:
                tiles.remove(self.home_tile_id)
                tiles.insert(0, self.home_tile_id)
            self._tile_order = tiles
        return self._tile_order

    # ------------------------------------------------------------- filling

    def install(
        self,
        block: int,
        molecule: Molecule,
        row_index: int,
        write: bool,
    ) -> list[tuple[int, bool]]:
        """Install a replacement unit for ``block`` into ``molecule``.

        Fetches ``line_multiplier`` consecutive base lines (aligned) into
        the chosen molecule, treating them as a single unit of replacement.
        Returns evicted ``(block, dirty)`` pairs.
        """
        k = self.line_multiplier
        base = block - (block % k)
        evicted: list[tuple[int, bool]] = []
        for offset in range(k):
            unit_block = base + offset
            current_home = self.presence.get(unit_block)
            if current_home is molecule:
                # Already resident in the target (possible when k > 1 and a
                # sibling line survived) — leave it.
                continue
            if current_home is not None:
                # The line exists elsewhere in the region; the unit fetch
                # supersedes that copy.
                was_dirty = current_home.invalidate(unit_block)
                self.presence.pop(unit_block, None)
                if was_dirty:
                    evicted.append((unit_block, True))
            out = molecule.fill(unit_block, dirty=write and unit_block == block)
            if out is not None:
                evicted.append(out)
                self.presence.pop(out[0], None)
            self.presence[unit_block] = molecule
        molecule.replacement_misses += 1
        if 0 <= row_index < len(self.row_misses):
            self.row_misses[row_index] += 1
        self.content_version += 1
        return evicted
