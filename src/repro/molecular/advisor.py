"""Reuse-distance resize advisor — the paper's future-work sizing scheme.

Algorithm 1 sizes partitions with a *linear* model ("Using a Linear
relationship between Cache Size and Miss Rate. Simplifies Computation!")
and notes that better techniques exist: "Other effective schemes such as
LRU stack, counters with cold miss compensation etc. can be used. The
actual evaluation of the resize algorithms based on these techniques is
outside the scope of this paper."

This module implements that scheme. Each managed region keeps a *sampled*
reuse-distance profile (spatial sampling a la SHARDS: only blocks whose
hash falls under ``1/sampling_ratio`` are tracked, and measured distances
are scaled back up). From the profile's miss curve the advisor answers
directly: *how many molecules does this region need to meet its goal?* —
with cold (first-touch) misses excluded from the estimate, since no
capacity can remove them (the "cold miss compensation").

The resize engine consults the advisor in place of the linear model when
``ResizePolicy`` selects ``advisor="stack"``.
"""

from __future__ import annotations

import math

from repro.analysis.reuse import COLD, StackDistanceAnalyzer
from repro.common.errors import ConfigError
from repro.molecular.region import CacheRegion

#: Knuth multiplicative hash constant (golden-ratio), for block sampling.
_HASH = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


class StackDistanceAdvisor:
    """Per-region sampled reuse-distance profiles and sizing answers."""

    def __init__(
        self,
        lines_per_molecule: int,
        sampling_ratio: int = 16,
        min_samples: int = 256,
    ) -> None:
        if lines_per_molecule < 1:
            raise ConfigError("lines_per_molecule must be positive")
        if sampling_ratio < 1:
            raise ConfigError("sampling_ratio must be >= 1")
        if min_samples < 1:
            raise ConfigError("min_samples must be positive")
        self.lines_per_molecule = lines_per_molecule
        self.sampling_ratio = sampling_ratio
        self.min_samples = min_samples
        self._analyzers: dict[int, StackDistanceAnalyzer] = {}
        self._headroom: dict[int, float] = {}

    # ------------------------------------------------------------ sampling

    def _sampled(self, block: int) -> bool:
        hashed = (block * _HASH) & _MASK64
        return hashed % self.sampling_ratio == 0

    def observe(self, region: CacheRegion, block: int) -> None:
        """Feed one access (called from the cache's access path)."""
        if region.goal is None or not self._sampled(block):
            return
        analyzer = self._analyzers.get(region.asid)
        if analyzer is None:
            analyzer = StackDistanceAnalyzer(capacity_hint=1 << 12)
            self._analyzers[region.asid] = analyzer
        analyzer.record(block)

    def samples_for(self, asid: int) -> int:
        analyzer = self._analyzers.get(asid)
        return analyzer.references if analyzer is not None else 0

    # ------------------------------------------------------------- sizing

    def target_molecules(self, region: CacheRegion) -> int | None:
        """Molecules needed for the region to meet its goal, or None.

        ``None`` means "no answer": not enough samples yet, or the goal is
        unreachable at any capacity (the capacity-insensitive miss floor —
        cold misses excluded — already exceeds it).
        """
        goal = region.goal
        if goal is None:
            return None
        analyzer = self._analyzers.get(region.asid)
        if analyzer is None or analyzer.references < self.min_samples:
            return None

        histogram = analyzer.histogram
        total = analyzer.references
        warm = total - histogram.get(COLD, 0)
        if warm <= 0:
            return None
        # Miss rate at capacity C (cold-compensated): fraction of *warm*
        # references with scaled distance >= C.
        distances = sorted(d for d in histogram if d != COLD)
        # Accumulate from the far end: misses(C) = refs with distance >= C.
        suffix: list[tuple[int, int]] = []  # (scaled distance, refs at >= d)
        running = 0
        for distance in reversed(distances):
            running += histogram[distance]
            suffix.append((distance * self.sampling_ratio, running))
        suffix.reverse()

        # Find the smallest capacity whose warm miss rate meets the goal.
        # Candidate capacities are the scaled distances themselves (miss
        # rate is a step function between them).
        for scaled_distance, refs_at_or_beyond in suffix:
            miss_rate = refs_at_or_beyond / warm
            if miss_rate <= goal:
                blocks_needed = scaled_distance
                return max(
                    1, math.ceil(blocks_needed / self.lines_per_molecule)
                )
        # Even caching every sampled distance's worth leaves us above goal
        # only if goal < smallest achievable; capacity beyond the largest
        # distance yields miss rate 0 (cold-compensated), which always
        # meets any non-negative goal:
        largest = distances[-1] * self.sampling_ratio if distances else 0
        return max(1, math.ceil((largest + 1) / self.lines_per_molecule))

    # ------------------------------------------------------------ headroom

    # The stack-distance target is an *ideal fully-associative LRU*
    # capacity. A molecular region needs headroom above it: Randy's
    # random-within-row eviction and row aliasing waste some capacity.
    # The headroom factor is learned per application from feedback: raised
    # when the region misses its goal despite holding the target, lowered
    # gently when it overshoots.

    _HEADROOM_MIN = 1.0
    _HEADROOM_MAX = 3.0

    def headroom(self, asid: int) -> float:
        return self._headroom.get(asid, 1.2)

    def effective_target(self, region: CacheRegion) -> int | None:
        """The sized target including the learned placement headroom."""
        target = self.target_molecules(region)
        if target is None:
            return None
        return max(1, math.ceil(target * self.headroom(region.asid)))

    def note_underestimate(self, asid: int) -> None:
        """The region held the target yet missed its goal — need more."""
        self._headroom[asid] = min(
            self.headroom(asid) * 1.2, self._HEADROOM_MAX
        )

    def note_overestimate(self, asid: int) -> None:
        """The region is comfortably below goal — relax the headroom."""
        self._headroom[asid] = max(
            self.headroom(asid) * 0.95, self._HEADROOM_MIN
        )

    def reset(self, asid: int) -> None:
        """Drop an application's profile (e.g. at a known phase change)."""
        self._analyzers.pop(asid, None)
        self._headroom.pop(asid, None)
