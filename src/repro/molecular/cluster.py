"""Tile clusters and the Ulmo tile controller.

4-8 tiles form a tile cluster; each cluster has one controller, *Ulmo*
("Unlimited Molecules"), which handles tile misses — searching the other
tiles of the cluster that contribute molecules to the requesting region —
plus molecule allocation across tiles and (in hardware) inter-cluster
coherence traffic. A region never spans clusters: when a cluster is out of
free molecules, growth simply stalls, which is the behaviour behind the
paper's "threshold size" observation in Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.molecular.molecule import Molecule
from repro.molecular.region import CacheRegion
from repro.molecular.tile import Tile


@dataclass(slots=True)
class UlmoStats:
    """Activity counters of one Ulmo controller."""

    tile_misses: int = 0
    remote_hits: int = 0
    global_misses: int = 0
    remote_molecules_probed: int = 0
    allocations: int = 0
    allocation_shortfalls: int = 0


class Ulmo:
    """The per-cluster controller (global miss handler + allocator)."""

    __slots__ = ("cluster", "stats")

    def __init__(self, cluster: "TileCluster") -> None:
        self.cluster = cluster
        self.stats = UlmoStats()

    # ----------------------------------------------------------- searching

    def remote_probe_cost(self, region: CacheRegion, found_tile: int | None) -> int:
        """Molecules probed outside the home tile during a tile miss.

        Ulmo searches only the tiles that contribute molecules to the
        region, in a deterministic order (home first, then ascending id),
        stopping at the tile that holds the line (or after all of them on a
        global miss, ``found_tile is None``).
        """
        probed = 0
        for tile_id in region.contributing_tiles():
            if tile_id == region.home_tile_id:
                continue
            probed += region.molecules_by_tile[tile_id]
            if found_tile is not None and tile_id == found_tile:
                break
        return probed

    # ---------------------------------------------------------- allocation

    def allocate(
        self, asid: int, count: int, home_tile_id: int
    ) -> list[Molecule]:
        """Grant up to ``count`` free molecules, preferring the home tile.

        "The additional molecules required for increasing the size of the
        partition can be either obtained from the tile in which the cache
        region is being currently hosted or from other tiles in the
        tile-cluster."
        """
        granted: list[Molecule] = []
        ordered = sorted(
            self.cluster.tiles, key=lambda t: (t.tile_id != home_tile_id, t.tile_id)
        )
        for tile in ordered:
            if len(granted) >= count:
                break
            granted.extend(tile.take_free(count - len(granted), asid))
        self.stats.allocations += len(granted)
        if len(granted) < count:
            self.stats.allocation_shortfalls += 1
        return granted


class TileCluster:
    """A group of tiles managed by one Ulmo."""

    __slots__ = ("cluster_id", "tiles", "ulmo", "_tiles_by_id")

    def __init__(
        self,
        cluster_id: int,
        tile_count: int,
        molecules_per_tile: int,
        lines_per_molecule: int,
        first_tile_id: int = 0,
        first_molecule_id: int = 0,
    ) -> None:
        if tile_count < 1:
            raise ConfigError("a cluster needs at least one tile")
        self.cluster_id = cluster_id
        self.tiles: list[Tile] = []
        molecule_id = first_molecule_id
        for i in range(tile_count):
            tile = Tile(
                tile_id=first_tile_id + i,
                cluster_id=cluster_id,
                molecule_count=molecules_per_tile,
                lines_per_molecule=lines_per_molecule,
                first_molecule_id=molecule_id,
            )
            molecule_id += molecules_per_tile
            self.tiles.append(tile)
        self.ulmo = Ulmo(self)
        self._tiles_by_id = {tile.tile_id: tile for tile in self.tiles}

    def tile(self, tile_id: int) -> Tile:
        try:
            return self._tiles_by_id[tile_id]
        except KeyError:
            raise ConfigError(
                f"tile {tile_id} is not in cluster {self.cluster_id}"
            ) from None

    @property
    def free_count(self) -> int:
        return sum(tile.free_count for tile in self.tiles)

    @property
    def molecule_count(self) -> int:
        return sum(len(tile.molecules) for tile in self.tiles)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"TileCluster(id={self.cluster_id}, tiles={len(self.tiles)}, "
            f"free={self.free_count}/{self.molecule_count})"
        )
