"""Molecule-selection (placement) policies: Random, Randy, LRU-Direct.

Replacement in a molecular cache happens in two steps: pick a *molecule*
from the region's replacement view, then install the line at its
direct-mapped index. The policies differ in the first step (paper section
3.3):

* **Random** — the region is a single row; any molecule may receive any
  line. Uses per-*molecule* miss counters for resize decisions.
* **Randy** — the region is a matrix; the row is a hash of the address
  (``(address / molecule_size) mod row_max``) and a random molecule within
  that row receives the line. Uses per-*row* miss counters, which lets the
  resize engine add associativity exactly where the misses are.
* **LRU-Direct** — the paper's future-work suggestion: like Randy, but the
  victim within the row is the molecule whose conflicting occupant was
  least recently touched, instead of a random one.

A policy also decides *where* new molecules are attached and *which*
molecule a withdrawal should take — both driven by the same counters.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.common.errors import ConfigError, SimulationError
from repro.common.rng import DeterministicRNG
from repro.molecular.molecule import Molecule
from repro.molecular.region import CacheRegion


class PlacementPolicy(ABC):
    """Strategy interface for molecule selection and resize placement."""

    name: str = "abstract"

    @abstractmethod
    def choose(
        self,
        region: CacheRegion,
        block: int,
        lines_per_molecule: int,
        rng: DeterministicRNG,
    ) -> tuple[Molecule, int]:
        """Molecule (and its replacement-view row) to receive ``block``."""

    @abstractmethod
    def add_row_index(self, region: CacheRegion) -> int | None:
        """Row to attach a newly granted molecule to (None = new row)."""

    def initial_row_index(self, region: CacheRegion) -> int | None:
        """Row for molecules of the *initial* allocation.

        Default: every initial molecule opens its own row, giving Randy an
        ``M x 1`` replacement view (maximum row coverage, associativity 1)
        that later additions deepen where the misses are.
        """
        return None

    @abstractmethod
    def choose_withdrawal(self, region: CacheRegion) -> Molecule:
        """Molecule to give up when the region shrinks."""

    def on_hit(self, region: CacheRegion, block: int) -> None:
        """Hook called on every hit (LRU-Direct tracks recency here)."""

    def on_evict(self, region: CacheRegion, block: int) -> None:
        """Hook called when ``block`` leaves ``region`` (replacement
        eviction or withdrawal flush) — LRU-Direct prunes recency state
        here so its timestamp maps stay bounded by residency."""

    def on_remap(self, region: CacheRegion, block: int) -> None:
        """Hook called when ``block`` migrates between molecules during a
        consistent-hashing resize (:mod:`repro.molecular.chash`). The
        block stays resident, so recency state survives; policies that
        key state on the *molecule* rather than the block would resync
        here."""

    def reset_counters(self, region: CacheRegion) -> None:
        """Zero the miss counters after a resize decision."""
        for molecule in region.molecules():
            molecule.replacement_misses = 0
        region.row_misses = [0] * len(region.rows)


class RandomPlacement(PlacementPolicy):
    """Single-row region; a uniformly random molecule takes the line."""

    name = "random"

    def choose(
        self,
        region: CacheRegion,
        block: int,
        lines_per_molecule: int,
        rng: DeterministicRNG,
    ) -> tuple[Molecule, int]:
        if not region.rows:
            raise SimulationError(f"region asid={region.asid} has no molecules")
        row = region.rows[0]
        return rng.choice(row), 0

    def add_row_index(self, region: CacheRegion) -> int | None:
        # "All molecules can be visualized as placed one behind the other
        # (i.e. in a single row). Any new addition of molecules simply
        # increases the associativity of the arrangement."
        return 0 if region.rows else None

    def initial_row_index(self, region: CacheRegion) -> int | None:
        """Random keeps the whole region in one row from the start."""
        return 0 if region.rows else None

    def choose_withdrawal(self, region: CacheRegion) -> Molecule:
        # Per-molecule counters: withdraw the molecule with the fewest
        # replacement misses ("it holds the least number of addresses").
        # Ties release remote molecules first — keeping the region on its
        # home tile preserves the cheap local-lookup path.
        candidates = list(region.molecules())
        if not candidates:
            raise SimulationError(f"region asid={region.asid} has no molecules")
        return min(
            candidates,
            key=lambda m: (
                m.replacement_misses,
                m.tile_id == region.home_tile_id,
                m.molecule_id,
            ),
        )


class RandyPlacement(PlacementPolicy):
    """Row selected by address hash; random molecule within the row."""

    name = "randy"

    def choose(
        self,
        region: CacheRegion,
        block: int,
        lines_per_molecule: int,
        rng: DeterministicRNG,
    ) -> tuple[Molecule, int]:
        row_index = region.row_of(block, lines_per_molecule)
        row = region.rows[row_index]
        return rng.choice(row), row_index

    def add_row_index(self, region: CacheRegion) -> int | None:
        # "Molecules are added along the rows with the highest miss count"
        # (plural) — prioritise by *expected misses per molecule* so that a
        # multi-molecule grant spreads over the hot rows instead of piling
        # onto a single argmax row (adding to a row immediately lowers its
        # per-molecule pressure for the next pick within the same grant).
        if not region.rows:
            return None
        return max(
            range(len(region.rows)),
            key=lambda i: region.row_misses[i] / len(region.rows[i]),
        )

    def choose_withdrawal(self, region: CacheRegion) -> Molecule:
        # Per-row counters: shrink the row with the fewest misses. Rows
        # with spare associativity are preferred — taking the last molecule
        # of a row narrows the replacement view (row_max changes remap
        # every row), so that is a last resort.
        if not region.rows:
            raise SimulationError(f"region asid={region.asid} has no molecules")
        order = sorted(
            range(len(region.rows)),
            key=lambda i: (region.row_misses[i], -len(region.rows[i])),
        )
        chosen = order[0]
        for index in order:
            if len(region.rows[index]) > 1:
                chosen = index
                break
        row = region.rows[chosen]
        # Ties release remote molecules first (see RandomPlacement).
        return min(
            row,
            key=lambda m: (
                m.replacement_misses,
                m.tile_id == region.home_tile_id,
                m.molecule_id,
            ),
        )


class LRUDirectPlacement(RandyPlacement):
    """Randy's row hash with LRU victim selection inside the row.

    The paper's future-work replacement scheme: track the last touch time
    of every resident block and evict the row member whose conflicting
    occupant is oldest (empty slots win immediately). The bookkeeping is a
    region-side timestamp map updated from the hit path.
    """

    name = "lru_direct"

    def __init__(self) -> None:
        self._touch: dict[int, dict[int, int]] = {}
        self._clock = 0

    def _touches(self, region: CacheRegion) -> dict[int, int]:
        return self._touch.setdefault(region.asid, {})

    def on_hit(self, region: CacheRegion, block: int) -> None:
        self._clock += 1
        self._touches(region)[block] = self._clock

    def on_evict(self, region: CacheRegion, block: int) -> None:
        # A superseded dirty copy appears in the eviction list but the
        # block is immediately re-fetched into the target molecule — it
        # is still resident, so its timestamp must survive.
        if block in region.presence:
            return
        touches = self._touch.get(region.asid)
        if touches is not None:
            touches.pop(block, None)

    def choose(
        self,
        region: CacheRegion,
        block: int,
        lines_per_molecule: int,
        rng: DeterministicRNG,
    ) -> tuple[Molecule, int]:
        row_index = region.row_of(block, lines_per_molecule)
        row = region.rows[row_index]
        touches = self._touches(region)
        index = block % lines_per_molecule
        best: Molecule | None = None
        best_age = None
        for molecule in row:
            occupant = molecule.lines[index]
            if occupant is None:
                return molecule, row_index
            age = touches.get(occupant, 0)
            if best_age is None or age < best_age:
                best, best_age = molecule, age
        if best is None:  # pragma: no cover - row is never empty
            raise SimulationError("empty replacement-view row")
        return best, row_index


_POLICIES = {
    "random": RandomPlacement,
    "randy": RandyPlacement,
    "lru_direct": LRUDirectPlacement,
}


def make_placement_policy(name: str) -> PlacementPolicy:
    """Build a placement policy by name (``random``/``randy``/``lru_direct``)."""
    try:
        return _POLICIES[name.lower()]()
    except KeyError:
        raise ConfigError(
            f"unknown placement policy {name!r}; expected one of {sorted(_POLICIES)}"
        ) from None
