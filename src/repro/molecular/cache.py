"""The molecular cache front end.

Ties the pieces together: tiles and clusters (physical organisation),
regions (partitions), placement policies (Random/Randy/LRU-Direct), the
resize engine (Algorithm 1), hierarchical lookup with probe-energy
accounting, and the shared-bit molecules of Figure 3.

Access path for a reference from application ``a`` (home tile ``T``):

1. every molecule of ``T`` runs the ASID comparison (one extra cycle, and
   comparator energy — counted in ``stats.asid_comparisons``);
2. the ASID-matching molecules of ``T`` (plus any shared-bit molecules)
   are probed — ``stats.molecules_probed_local``;
3. on a tile miss, the cluster's Ulmo probes the other tiles that
   contribute molecules to ``a``'s region, in order, until the line is
   found — ``stats.molecules_probed_remote``;
4. on a global miss, the placement policy picks a molecule from the
   replacement view and the line (or the region's replacement unit, for a
   larger configured line size) is installed.

Functionally, steps 2-3 are served by the region's presence map; the
architectural probe counts are charged as if every search had happened,
which is what the power model integrates (DESIGN.md section 7).
"""

from __future__ import annotations

from repro.common.errors import ConfigError, UnknownASIDError
from repro.common.rng import DeterministicRNG, XorShift64
from repro.common.types import Access, AccessResult
from repro.molecular.cluster import TileCluster
from repro.molecular.config import MolecularCacheConfig, ResizePolicy
from repro.molecular.latency import LatencyModel
from repro.molecular.placement import PlacementPolicy, make_placement_policy
from repro.molecular.region import CacheRegion
from repro.molecular.resize import Resizer
from repro.molecular.stats import MolecularStats
from repro.molecular.tile import Tile
from repro.telemetry.events import RunMeta

#: ASID sentinel owning shared-bit regions.
SHARED_ASID = -2

#: Profile-driven initial-allocation hints (paper section 3.4, "Ground
#: Zero": "User-driven/Profile-driven directives such as 'small',
#: 'typical' and 'large' cache usage patterns can be used to suitably
#: modify the initial allocation"), as fractions of a tile.
ALLOCATION_PROFILES = {
    "small": 0.125,
    "typical": 0.5,
    "large": 1.0,
}


class MolecularCache:
    """A cache built as an aggregation of molecules.

    Parameters
    ----------
    config:
        Physical geometry (molecules, tiles, clusters).
    resize_policy:
        Behaviour of the resize engine; defaults to the paper's adaptive
        scheme with a 25 000-reference initial period.
    placement:
        Placement policy instance or name; overrides ``config.placement``.
    rng:
        Deterministic RNG for the random molecule choices.
    latency_model:
        Cycle accounting for the access path; ``None`` keeps the default
        parameters (see :mod:`repro.molecular.latency`).
    """

    def __init__(
        self,
        config: MolecularCacheConfig | None = None,
        resize_policy: ResizePolicy | None = None,
        placement: PlacementPolicy | str | None = None,
        rng: DeterministicRNG | None = None,
        latency_model: LatencyModel | None = None,
    ) -> None:
        self.config = config or MolecularCacheConfig()
        self.resize_policy = resize_policy or ResizePolicy()
        if placement is None:
            placement = self.config.placement
        if isinstance(placement, str):
            placement = make_placement_policy(placement)
        self.placement = placement
        self.rng = rng if rng is not None else XorShift64(self.config.rng_seed)
        self.latency_model = latency_model or LatencyModel()

        self.stats = MolecularStats()
        self.clusters: list[TileCluster] = []
        self._tiles: dict[int, Tile] = {}
        tile_id = 0
        molecule_id = 0
        for cluster_id in range(self.config.clusters):
            cluster = TileCluster(
                cluster_id=cluster_id,
                tile_count=self.config.tiles_per_cluster,
                molecules_per_tile=self.config.molecules_per_tile,
                lines_per_molecule=self.config.lines_per_molecule,
                first_tile_id=tile_id,
                first_molecule_id=molecule_id,
            )
            tile_id += self.config.tiles_per_cluster
            molecule_id += (
                self.config.tiles_per_cluster * self.config.molecules_per_tile
            )
            self.clusters.append(cluster)
            for tile in cluster.tiles:
                self._tiles[tile.tile_id] = tile

        self.regions: dict[int, CacheRegion] = {}
        self._shared_regions: dict[int, CacheRegion] = {}
        self._next_tile_assignment = 0
        self.resizer = Resizer(self, self.resize_policy)
        self._line_shift = (self.config.line_bytes - 1).bit_length()
        #: Attached telemetry bus, or None. The access loop's only
        #: telemetry cost when disabled is the ``is None`` check on this.
        self.telemetry = None
        #: Attached hot-path profiler, or None. Checked once per
        #: ``access_many``/``access_session`` call — never per reference
        #: (``tests/test_prof_zero_cost.py`` counts the lookups).
        self.profiler = None
        #: Context epoch for the batched access engine: bumped by every
        #: cache-level event that can invalidate a cached per-region
        #: access context (region assignment, shared-region creation,
        #: migration, resize fires). Per-region membership changes are
        #: tracked separately by ``CacheRegion.version``.
        self._ctx_epoch = 0
        #: Persistent per-(region, shared) flat-array mirrors for the
        #: columnar engine, keyed by the region objects' identities.
        #: Validity is tracked inside each mirror (region version +
        #: content revision), so mutations made anywhere in the object
        #: model invalidate them without touching this dict.
        self._columnar_mirrors = {}

    # ----------------------------------------------------------- telemetry

    def attach_telemetry(self, bus):
        """Attach an event bus and emit the stream's ``RunMeta`` header.

        Re-attaching the same bus is a no-op, so drivers can wire
        telemetry without caring whether the caller already did.
        """
        if bus is self.telemetry:
            return bus
        self.telemetry = bus
        bus.bind_cache(self)
        bus.emit(
            RunMeta(
                total_bytes=self.config.total_bytes,
                clusters=len(self.clusters),
                tiles=len(self._tiles),
                molecules_per_tile=self.config.molecules_per_tile,
                lines_per_molecule=self.config.lines_per_molecule,
                regions={
                    asid: {
                        "goal": region.goal,
                        "home_tile": region.home_tile_id,
                        "molecules": region.molecule_count,
                        "line_multiplier": region.line_multiplier,
                    }
                    for asid, region in sorted(self.regions.items())
                },
            )
        )
        return bus

    def detach_telemetry(self):
        """Detach and return the current bus (None when not attached)."""
        bus, self.telemetry = self.telemetry, None
        if bus is not None:
            bus.bind_cache(None)
        return bus

    # ------------------------------------------------------------ profiling

    def attach_profiler(self, profiler):
        """Attach a :class:`~repro.prof.profiler.HotPathProfiler`.

        Subsequent ``access_many``/``access_session`` calls build the
        stage-instrumented engine; the resizer times its rounds into the
        profiler. Stats, telemetry and resize behaviour are unaffected
        (the profiled paths are byte-identical to the plain ones).
        """
        self.profiler = profiler
        return profiler

    def detach_profiler(self):
        """Detach and return the current profiler (None when absent)."""
        profiler, self.profiler = self.profiler, None
        return profiler

    # ------------------------------------------------------------ topology

    def tile_of(self, tile_id: int) -> Tile:
        try:
            return self._tiles[tile_id]
        except KeyError:
            raise ConfigError(f"no tile {tile_id} in this cache") from None

    def cluster_of_tile(self, tile_id: int) -> TileCluster:
        return self.clusters[self.tile_of(tile_id).cluster_id]

    @property
    def size_bytes(self) -> int:
        return self.config.total_bytes

    # ------------------------------------------------------- applications

    def assign_application(
        self,
        asid: int,
        goal: float | None = None,
        tile_id: int | None = None,
        line_multiplier: int = 1,
        initial_molecules: int | None = None,
        profile: str | None = None,
    ) -> CacheRegion:
        """Create an exclusive cache region for an application.

        ``tile_id`` defaults to the next tile in round-robin order (the
        paper statically assigns each processor to a tile). The initial
        allocation defaults to ``initial_fraction_of_tile`` of a tile
        (paper: half); a ``profile`` hint (``"small"`` / ``"typical"`` /
        ``"large"``) overrides it with the corresponding tile fraction,
        and an explicit ``initial_molecules`` overrides both. The
        region's line size is fixed at creation (paper section 3.2).
        """
        if asid in self.regions:
            raise ConfigError(f"asid {asid} already has a region")
        if profile is not None:
            if profile not in ALLOCATION_PROFILES:
                raise ConfigError(
                    f"unknown allocation profile {profile!r}; expected one "
                    f"of {sorted(ALLOCATION_PROFILES)}"
                )
            if initial_molecules is None:
                initial_molecules = max(
                    1,
                    int(
                        self.config.molecules_per_tile
                        * ALLOCATION_PROFILES[profile]
                    ),
                )
        if asid < 0:
            raise ConfigError(f"application ASIDs must be >= 0, got {asid}")
        if tile_id is None:
            tile_id = self._next_tile_assignment % len(self._tiles)
            self._next_tile_assignment += 1
        elif tile_id not in self._tiles:
            raise ConfigError(f"no tile {tile_id} in this cache")
        if line_multiplier > self.config.lines_per_molecule:
            raise ConfigError(
                "line multiplier cannot exceed the lines per molecule"
            )

        region = CacheRegion(asid, goal, tile_id, line_multiplier)
        if initial_molecules is None:
            initial_molecules = max(
                1,
                int(
                    self.config.molecules_per_tile
                    * self.resize_policy.initial_fraction_of_tile
                ),
            )
        cluster = self.cluster_of_tile(tile_id)
        granted = cluster.ulmo.allocate(asid, initial_molecules, tile_id)
        if not granted:
            # Fail at assignment time: a region with zero molecules would
            # only surface later, as an opaque SimulationError from the
            # placement policy on the application's first miss.
            raise ConfigError(
                f"cannot assign asid {asid}: an initial allocation of "
                f"{initial_molecules} molecule(s) got none (tile {tile_id} "
                f"has {self.tile_of(tile_id).free_count} free, its cluster "
                f"{cluster.free_count})"
            )
        for molecule in granted:
            region.add_molecule(molecule, self.placement.initial_row_index(region))
        self.regions[asid] = region
        self.resizer.register_region(region)
        self._ctx_epoch += 1
        return region

    def create_shared_region(self, tile_id: int, molecules: int) -> CacheRegion:
        """Configure ``molecules`` of a tile as shared-bit molecules.

        Shared molecules are probed by *every* request arriving at the
        tile, regardless of ASID (Figure 3's multiplexor). Applications
        registered with :meth:`assign_shared_application` place their data
        here.
        """
        if tile_id in self._shared_regions:
            raise ConfigError(f"tile {tile_id} already has a shared region")
        tile = self.tile_of(tile_id)
        granted = tile.take_free(molecules, SHARED_ASID, shared=True)
        if len(granted) < molecules:
            for molecule in granted:
                tile.release(molecule)
            # After the release loop the partial grant is already back in
            # the free pool, so free_count alone is the availability.
            raise ConfigError(
                f"tile {tile_id} has only {tile.free_count} free "
                f"molecules; cannot build a shared region of {molecules}"
            )
        region = CacheRegion(SHARED_ASID, None, tile_id)
        for molecule in granted:
            region.add_molecule(molecule, self.placement.initial_row_index(region))
        self._shared_regions[tile_id] = region
        self._ctx_epoch += 1
        return region

    def assign_shared_application(self, asid: int, tile_id: int) -> CacheRegion:
        """Attach an application to a tile's shared region (no exclusive
        molecules of its own)."""
        if asid in self.regions:
            raise ConfigError(f"asid {asid} already has a region")
        shared = self._shared_regions.get(tile_id)
        if shared is None:
            raise ConfigError(f"tile {tile_id} has no shared region")
        self.regions[asid] = shared
        self._ctx_epoch += 1
        return shared

    def region_of(self, asid: int) -> CacheRegion:
        try:
            return self.regions[asid]
        except KeyError:
            raise UnknownASIDError(asid) from None

    def migrate_application(self, asid: int, new_tile_id: int) -> None:
        """Re-home an application to another tile (a context switch).

        The paper: "The processor-tile assignment can be made non-static
        by allowing the processor-tile mapping to be changed during a
        context-switch." Migration is lazy — the region keeps its
        molecules; lookups simply probe the new home tile first, so lines
        left on the old tile are found through Ulmo (at remote-search
        cost) until natural replacement migrates the working set. The new
        tile must be in the same cluster (regions never span clusters).
        """
        region = self.region_of(asid)
        if region.asid == SHARED_ASID:
            raise ConfigError("shared regions cannot be migrated")
        new_tile = self.tile_of(new_tile_id)
        old_cluster = self.tile_of(region.home_tile_id).cluster_id
        if new_tile.cluster_id != old_cluster:
            raise ConfigError(
                f"cannot migrate asid {asid} across clusters "
                f"({old_cluster} -> {new_tile.cluster_id})"
            )
        region.home_tile_id = new_tile_id
        region.invalidate_search_order()
        self._ctx_epoch += 1

    # -------------------------------------------------------------- access

    def access(self, access: Access) -> AccessResult:
        return self.access_block(
            access.address >> self._line_shift, access.asid, access.is_write
        )

    def access_many(self, blocks, asids=0, writes=False) -> int:
        """Batched fast path: stream a whole reference array.

        ``blocks`` is a sequence of block numbers (numpy array, list or
        tuple); ``asids``/``writes`` are parallel sequences or scalars
        broadcast to every reference. Returns the number of accesses
        simulated; cumulative results live in :attr:`stats` exactly as
        if each reference had gone through :meth:`access_block` — the
        engine is byte-identical to the scalar path for stats, resize
        decisions and telemetry streams (see
        :mod:`repro.molecular.engine`).
        """
        profiler = self.profiler
        if profiler is not None and profiler.enabled:
            from repro.prof.engine import ProfiledAccessEngine

            return ProfiledAccessEngine(self).stream(blocks, asids, writes)
        from repro.molecular.columnar import ColumnarAccessEngine

        return ColumnarAccessEngine(self).stream(blocks, asids, writes)

    def access_session(self):
        """An allocation-free per-access session for feedback drivers.

        Returns an :class:`~repro.molecular.engine.AccessEngine` whose
        ``access(block, asid, write) -> bool`` skips ``AccessResult``
        construction while keeping stats/telemetry byte-identical to
        :meth:`access_block`. The session caches per-region contexts, so
        do not reset :attr:`stats` while one is live — build a new
        session instead.
        """
        profiler = self.profiler
        if profiler is not None and profiler.enabled:
            from repro.prof.engine import ProfiledAccessEngine

            return ProfiledAccessEngine(self)
        from repro.molecular.engine import AccessEngine

        return AccessEngine(self)

    def access_block(self, block: int, asid: int = 0, write: bool = False) -> AccessResult:
        """Simulate one reference; returns hit/miss plus probe counts.

        This is the scalar *reference implementation*: the batched
        engine behind :meth:`access_many` must stay byte-identical to
        it (``tests/test_prop_batched.py`` enforces the equivalence).
        """
        region = self.regions.get(asid)
        if region is None:
            raise UnknownASIDError(asid)
        stats = self.stats
        # Touch the per-ASID counters at dispatch, like the engines do
        # when they build an access context — keeps partial state
        # identical across paths if the access errors out mid-way.
        stats.counters_for(asid)
        home_tile_id = region.home_tile_id
        home_tile = self._tiles[home_tile_id]
        home_tile.port_accesses += 1

        # Stage 1: ASID comparators fire in every molecule of the home tile
        # (retired molecules are powered off — their comparators are gone).
        stats.asid_comparisons += home_tile.comparator_count

        # Stage 2: probe the matching molecules of the home tile (plus any
        # shared-bit molecules).
        local_probes = region.molecules_by_tile.get(home_tile_id, 0)
        shared_region = self._shared_regions.get(home_tile_id)
        if shared_region is not None and shared_region is not region:
            local_probes += home_tile.shared_count
        stats.molecules_probed_local += local_probes

        molecule = region.lookup(block)
        serving_region = region
        if molecule is None and shared_region is not None and shared_region is not region:
            molecule = shared_region.lookup(block)
            if molecule is not None:
                serving_region = shared_region

        remote_probes = 0
        remote_tiles = 0
        remote_extra = 0
        if molecule is not None:
            if molecule.tile_id != home_tile_id:
                cluster = self.cluster_of_tile(home_tile_id)
                cluster.ulmo.stats.tile_misses += 1
                cluster.ulmo.stats.remote_hits += 1
                remote_tiles, remote_probes, comparisons, remote_extra = (
                    self._remote_search(region, molecule.tile_id)
                )
                stats.molecules_probed_remote += remote_probes
                stats.asid_comparisons += comparisons
            if write:
                molecule.mark_dirty(block)
            # Recency belongs to the region that served the hit: a hit in
            # the tile's shared region must age the *shared* occupants,
            # not stamp the exclusive region's map.
            self.placement.on_hit(serving_region, block)
            stats.record_access(asid, hit=True)
            region.record_access(hit=True)
            result = AccessResult(
                hit=True,
                molecules_probed_local=local_probes,
                molecules_probed_remote=remote_probes,
            )
        else:
            cluster = self.cluster_of_tile(home_tile_id)
            contributing = region.contributing_tiles()
            has_remote = bool(contributing) and (
                contributing[0] != home_tile_id or len(contributing) > 1
            )
            if has_remote:
                cluster.ulmo.stats.tile_misses += 1
                remote_tiles, remote_probes, comparisons, remote_extra = (
                    self._remote_search(region, None)
                )
                stats.molecules_probed_remote += remote_probes
                stats.asid_comparisons += comparisons
            cluster.ulmo.stats.global_misses += 1

            target, row_index = self.placement.choose(
                region, block, self.config.lines_per_molecule, self.rng
            )
            evicted = region.install(block, target, row_index, write)
            dirty = sum(1 for _b, was_dirty in evicted if was_dirty)
            stats.writebacks_to_memory += dirty
            for b, was_dirty in evicted:
                stats.record_eviction(asid, was_dirty)
                self.placement.on_evict(region, b)
            stats.lines_fetched += region.line_multiplier
            stats.record_access(asid, hit=False)
            region.record_access(hit=False)
            result = AccessResult(
                hit=False,
                evicted_block=evicted[0][0] if evicted else None,
                writeback=dirty > 0,
                molecules_probed_local=local_probes,
                molecules_probed_remote=remote_probes,
                lines_filled=region.line_multiplier,
            )

        if remote_tiles:
            result.extra["remote_tiles_searched"] = remote_tiles
        stats.latency_cycles += (
            self.latency_model.cycles(result)
            + home_tile.extra_port_cycles
            + remote_extra
        )
        self.resizer.on_access(stats.total.accesses, region, block)
        bus = self.telemetry
        if bus is not None:
            bus.record_access(asid, block, write, result, remote_tiles)
        return result

    def _remote_search(
        self, region: CacheRegion, found_tile: int | None
    ) -> tuple[int, int, int, int]:
        """Walk the region's remote tiles in Ulmo's search order.

        Returns ``(tiles searched, molecules probed, ASID comparators
        fired, extra degraded-port cycles)`` — the search stops at
        ``found_tile`` (or covers every contributing tile on a global
        miss). Retired molecules fire no comparators; a degraded tile
        adds its ``extra_port_cycles`` to every search that reaches it.
        """
        tiles = probes = comparisons = extra = 0
        for tile_id in region.contributing_tiles():
            if tile_id == region.home_tile_id:
                continue
            tiles += 1
            probes += region.molecules_by_tile[tile_id]
            tile = self._tiles[tile_id]
            comparisons += tile.comparator_count
            extra += tile.extra_port_cycles
            if found_tile is not None and tile_id == found_tile:
                break
        return tiles, probes, comparisons, extra

    # ------------------------------------------------------------ reporting

    def partition_sizes(self) -> dict[int, int]:
        """Current molecule count per application."""
        return {
            asid: region.molecule_count
            for asid, region in sorted(self.regions.items())
        }

    def free_molecules(self) -> int:
        return sum(cluster.free_count for cluster in self.clusters)

    def occupancy_report(self) -> dict:
        """Structured snapshot for diagnostics and examples."""
        return {
            "config": self.config.table3_summary(),
            "partitions": {
                asid: {
                    "molecules": region.molecule_count,
                    "rows": region.row_max,
                    "goal": region.goal,
                    "miss_rate": region.miss_rate,
                    "mean_molecules": region.mean_molecules,
                    "home_tile": region.home_tile_id,
                    "tiles": dict(region.molecules_by_tile),
                }
                for asid, region in sorted(self.regions.items())
            },
            "free_molecules": self.free_molecules(),
            "resize_events": self.stats.resize_events,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"MolecularCache({self.config.total_bytes // (1 << 20)}MB, "
            f"{len(self.regions)} regions, placement={self.placement.name})"
        )
