"""Tiles: the physical grouping of molecules behind one read/write port.

32-256 molecules form a tile (paper Figure 2). Every processor is
statically assigned a tile; its requests probe that tile first. The tile
tracks which of its molecules are free and hands them to regions on
allocation requests.
"""

from __future__ import annotations

from repro.common.errors import AllocationError, ConfigError
from repro.molecular.molecule import Molecule


class Tile:
    """A group of molecules sharing one port."""

    __slots__ = (
        "tile_id",
        "cluster_id",
        "molecules",
        "port_accesses",
        "shared_count",
        "failed_count",
        "extra_port_cycles",
    )

    def __init__(
        self,
        tile_id: int,
        cluster_id: int,
        molecule_count: int,
        lines_per_molecule: int,
        first_molecule_id: int = 0,
    ) -> None:
        if molecule_count < 1:
            raise ConfigError("a tile needs at least one molecule")
        self.tile_id = tile_id
        self.cluster_id = cluster_id
        self.molecules: list[Molecule] = [
            Molecule(first_molecule_id + i, tile_id, cluster_id, lines_per_molecule)
            for i in range(molecule_count)
        ]
        #: Accesses that arrived at this tile (port pressure diagnostic).
        self.port_accesses = 0
        #: Number of molecules with the shared bit set (probed by every
        #: request on this tile regardless of ASID).
        self.shared_count = 0
        #: Molecules retired by hard faults. Their ASID comparators are
        #: powered off, so searches compare against ``len(molecules) -
        #: failed_count`` comparators on this tile.
        self.failed_count = 0
        #: Extra cycles every access through this tile's port pays when
        #: the tile is degraded by a fault (0 for a healthy tile).
        self.extra_port_cycles = 0

    # ---------------------------------------------------------- free pool

    def free_molecules(self) -> list[Molecule]:
        return [m for m in self.molecules if m.is_free]

    @property
    def free_count(self) -> int:
        return sum(1 for m in self.molecules if m.is_free)

    def owned_count(self, asid: int) -> int:
        return sum(1 for m in self.molecules if m.asid == asid and not m.shared)

    def take_free(self, count: int, asid: int, shared: bool = False) -> list[Molecule]:
        """Configure up to ``count`` free molecules for ``asid``.

        Returns the molecules actually granted (possibly fewer than asked —
        running dry is a normal condition for the resize engine).
        """
        if count < 0:
            raise AllocationError(f"cannot allocate {count} molecules")
        granted: list[Molecule] = []
        for molecule in self.molecules:
            if len(granted) >= count:
                break
            if molecule.is_free:
                molecule.configure(asid, shared)
                if shared:
                    self.shared_count += 1
                granted.append(molecule)
        return granted

    def release(self, molecule: Molecule) -> list[tuple[int, bool]]:
        """Return a molecule to the free pool; returns flushed lines."""
        if molecule.tile_id != self.tile_id:
            raise AllocationError(
                f"molecule {molecule.molecule_id} belongs to tile "
                f"{molecule.tile_id}, not {self.tile_id}"
            )
        if molecule.shared:
            self.shared_count -= 1
        return molecule.release()

    def retire(self, molecule: Molecule) -> list[tuple[int, bool]]:
        """Permanently remove a molecule from service (hard fault).

        Flushes and unconfigures like :meth:`release`, then marks the
        molecule failed so it can never be reconfigured or counted free.
        Returns the flushed ``(block, dirty)`` pairs.
        """
        flushed = self.release(molecule)
        molecule.failed = True
        self.failed_count += 1
        return flushed

    @property
    def active_count(self) -> int:
        """Molecules still in service (configured or free, not failed)."""
        return len(self.molecules) - self.failed_count

    @property
    def comparator_count(self) -> int:
        """ASID comparators that fire for a request probing this tile.

        Failed molecules power their comparators off, so this is the
        per-tile comparison cost both the scalar and columnar access
        paths charge per probe of the tile.
        """
        return len(self.molecules) - self.failed_count

    def occupancy_by_asid(self) -> dict[int, int]:
        """Molecule counts per owning ASID (diagnostics)."""
        counts: dict[int, int] = {}
        for molecule in self.molecules:
            if not molecule.is_free:
                counts[molecule.asid] = counts.get(molecule.asid, 0) + 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"Tile(id={self.tile_id}, cluster={self.cluster_id}, "
            f"molecules={len(self.molecules)}, free={self.free_count})"
        )
