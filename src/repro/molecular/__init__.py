"""Molecular Caches — the paper's contribution.

A molecular cache aggregates small direct-mapped caching units
(*molecules*) into per-application cache regions with adaptive size,
per-row associativity and variable line size. The package mirrors the
paper's structure:

* :mod:`~repro.molecular.molecule` — the 8-32 KB direct-mapped unit with
  ASID gating and a shared bit (paper section 3, Figure 3);
* :mod:`~repro.molecular.tile` / :mod:`~repro.molecular.cluster` — the
  physical organisation (Figure 2) and the Ulmo tile controller;
* :mod:`~repro.molecular.region` — a cache partition and its *replacement
  view*, the 2-D sparse matrix of Figure 4;
* :mod:`~repro.molecular.placement` — Random and Randy molecule-selection
  policies (section 3.3) plus the LRU-Direct extension the paper lists as
  future work;
* :mod:`~repro.molecular.resize` — Algorithm 1 and the constant / global
  adaptive / per-application adaptive triggers (section 3.4);
* :mod:`~repro.molecular.cache` — the full cache front end with
  hierarchical lookup and probe-energy accounting.
"""

from repro.molecular.advisor import StackDistanceAdvisor
from repro.molecular.cache import MolecularCache
from repro.molecular.config import MolecularCacheConfig, ResizePolicy
from repro.molecular.inspect import render_replacement_view, render_tile_map
from repro.molecular.latency import LatencyModel, LatencyParameters
from repro.molecular.molecule import Molecule
from repro.molecular.placement import (
    LRUDirectPlacement,
    PlacementPolicy,
    RandomPlacement,
    RandyPlacement,
    make_placement_policy,
)
from repro.molecular.region import CacheRegion
from repro.molecular.resize import Resizer
from repro.molecular.stats import MolecularStats
from repro.molecular.tile import Tile
from repro.molecular.cluster import TileCluster, Ulmo

__all__ = [
    "CacheRegion",
    "LRUDirectPlacement",
    "LatencyModel",
    "LatencyParameters",
    "MolecularCache",
    "MolecularCacheConfig",
    "MolecularStats",
    "Molecule",
    "PlacementPolicy",
    "RandomPlacement",
    "RandyPlacement",
    "ResizePolicy",
    "Resizer",
    "StackDistanceAdvisor",
    "Tile",
    "TileCluster",
    "Ulmo",
    "make_placement_policy",
    "render_replacement_view",
    "render_tile_map",
]
