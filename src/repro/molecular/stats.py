"""Statistics specific to molecular caches.

Extends the common :class:`~repro.caches.stats.CacheStats` with the probe
accounting the power model integrates (Table 4's "average mixed workload"
column is computed from exactly these counters) and resize-engine activity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.caches.stats import CacheStats


@dataclass(slots=True)
class MolecularStats(CacheStats):
    """Event counters for a molecular cache run.

    Attributes
    ----------
    molecules_probed_local / molecules_probed_remote:
        Total ASID-matching molecules probed in home tiles / via Ulmo.
        Dynamic data-array energy is proportional to these.
    asid_comparisons:
        Total ASID-comparator activations (every molecule of a searched
        tile performs the comparison — Figure 3's gate — even when it does
        not proceed to the data array).
    lines_fetched:
        Base lines brought in from memory (> misses when a region uses a
        larger line size).
    flush_writebacks:
        Dirty lines written back because a molecule was flushed on
        withdrawal (the remainder of ``writebacks_to_memory`` is dirty
        replacement evictions, counted per ASID in ``total.writebacks``).
        Under the ``chash`` mechanism only *spilled* lines (resident data
        that found no empty slot on the survivors) land here.
    resize_events / molecules_granted / molecules_withdrawn:
        Resize-engine activity.
    resize_blocks_moved / resize_spill_writebacks / resize_remap_work:
        Resize data-movement accounting (DESIGN.md section 13).
        ``resize_blocks_moved`` counts resident lines a resize action
        displaced from their home molecule, under *either* backend: the
        flush backend displaces every resident line of a withdrawn
        molecule (clean lines are refetched from memory later, dirty
        ones also cross the bus now), the chash backend counts lines
        migrated on a grow plus lines adopted-or-spilled on a withdraw.
        ``resize_spill_writebacks`` is the chash backend's dirty lines
        spilled to memory for want of a survivor slot (a subset of
        ``flush_writebacks``); ``resize_remap_work`` its ring-ownership
        evaluations (one per resident block considered for remap).
    faults_injected / molecules_retired / molecules_repaired /
    lines_invalidated:
        Fault-injection activity: faults applied, molecules retired by
        hard faults, replacement molecules granted by region repair, and
        lines dropped by transient (detected-uncorrectable) faults.
    resize_compute_cycles:
        Accounted cost of the resize computation (~1500 cycles per
        application per resize, per the paper).
    """

    molecules_probed_local: int = 0
    molecules_probed_remote: int = 0
    asid_comparisons: int = 0
    lines_fetched: int = 0
    writebacks_to_memory: int = 0
    flush_writebacks: int = 0
    resize_events: int = 0
    molecules_granted: int = 0
    molecules_withdrawn: int = 0
    resize_blocks_moved: int = 0
    resize_spill_writebacks: int = 0
    resize_remap_work: int = 0
    resize_compute_cycles: int = 0
    latency_cycles: int = 0
    faults_injected: int = 0
    molecules_retired: int = 0
    molecules_repaired: int = 0
    lines_invalidated: int = 0

    @property
    def molecules_probed(self) -> int:
        return self.molecules_probed_local + self.molecules_probed_remote

    def record_hit_probes_bulk(
        self,
        count: int,
        local_probes: int,
        remote_probes: int,
        comparisons: int,
        cycles: int,
    ) -> None:
        """Account ``count`` hits resolved by the columnar probe kernel.

        The caller computes the remote-probe/comparator/latency totals in
        array form (dot products over per-tile cost tables); this applies
        them in one shot — the bulk twin of the per-access updates in
        :meth:`~repro.molecular.cache.MolecularCache.access_block`.
        """
        self.molecules_probed_local += count * local_probes
        self.molecules_probed_remote += remote_probes
        self.asid_comparisons += comparisons
        self.latency_cycles += cycles

    def mean_molecules_probed(self) -> float:
        """Average molecules probed per access — the power model's input."""
        if self.total.accesses == 0:
            return 0.0
        return self.molecules_probed / self.total.accesses

    def mean_latency_cycles(self) -> float:
        """Average access latency (cycles) per the attached latency model."""
        if self.total.accesses == 0:
            return 0.0
        return self.latency_cycles / self.total.accesses

    def as_dict(self) -> dict:
        # Explicit base call: zero-arg super() breaks under
        # @dataclass(slots=True), which replaces the class object.
        base = CacheStats.as_dict(self)
        base.update(
            {
                "molecules_probed_local": self.molecules_probed_local,
                "molecules_probed_remote": self.molecules_probed_remote,
                "mean_molecules_probed": self.mean_molecules_probed(),
                "asid_comparisons": self.asid_comparisons,
                "lines_fetched": self.lines_fetched,
                "writebacks_to_memory": self.writebacks_to_memory,
                "flush_writebacks": self.flush_writebacks,
                "resize_events": self.resize_events,
                "molecules_granted": self.molecules_granted,
                "molecules_withdrawn": self.molecules_withdrawn,
                "resize_blocks_moved": self.resize_blocks_moved,
                "resize_spill_writebacks": self.resize_spill_writebacks,
                "resize_remap_work": self.resize_remap_work,
                "resize_compute_cycles": self.resize_compute_cycles,
                "latency_cycles": self.latency_cycles,
                "mean_latency_cycles": self.mean_latency_cycles(),
                "faults_injected": self.faults_injected,
                "molecules_retired": self.molecules_retired,
                "molecules_repaired": self.molecules_repaired,
                "lines_invalidated": self.lines_invalidated,
            }
        )
        return base
