"""Consistent-hashing resize mechanism (DESIGN.md section 13).

The flush-based resizer empties withdrawn molecules whole: every dirty
line is written back and every clean line discarded, so at large region
sizes and high churn the writeback storm dominates resize cost — and the
misses to re-fetch the discarded lines dominate recovery time. The
DRAM-cache resizing literature (arXiv:1602.00722) instead places blocks
with a consistent hash so a capacity change remaps only the proportional
slice of blocks that changed owner.

This module is that mechanism for molecular caches, behind the
:class:`~repro.molecular.resize.ResizeMechanism` interface:

* Each managed region gets a **hash ring** over its molecules
  (:class:`MoleculeRing`): every molecule contributes :data:`VNODES`
  points at ``hash(molecule_id, replica)``, and a replacement unit's key
  (``block // line_multiplier``) is owned by the first point at or after
  its hash. The ring is rebuilt lazily whenever the region's membership
  :attr:`~repro.molecular.region.CacheRegion.version` moved (grants,
  withdrawals, fault retirements).
* **Growing** (and fault repair) attaches molecules exactly as the flush
  backend does, then *migrates* the resident blocks whose ring slice
  moved onto a new molecule — ring construction guarantees no key moves
  between two surviving molecules. A migration
  (:meth:`~repro.molecular.region.CacheRegion.move_block`) keeps the
  dirty bit and costs no memory traffic.
* **Shrinking** detaches the chosen molecule, then re-installs its lines
  onto their new ring owners (:meth:`~repro.molecular.region.
  CacheRegion.adopt_block`) wherever the direct-mapped slot is free;
  only lines that find no slot spill — dirty spills are written back
  (counted in both ``flush_writebacks`` and ``writebacks_to_memory``,
  preserving the auditor's stats-conservation law, plus
  ``resize_spill_writebacks``), clean spills are simply dropped.

Moves and spills bump the region's ``content_version`` (inside the
region primitives), so the columnar engine's mirrors resync exactly as
they do after any flush resize. Remap activity lands in
``resize_blocks_moved`` / ``resize_remap_work`` and is published as
:class:`~repro.telemetry.events.MoleculeRemapped` telemetry.

The hash is a splitmix64 finaliser — pure integer arithmetic, no RNG
state — so every access path (scalar, batched, session, columnar, brute)
replays a stream to the identical ring decisions.
"""

from __future__ import annotations

from bisect import bisect_left

from repro.common.errors import SimulationError
from repro.molecular.molecule import Molecule
from repro.molecular.region import CacheRegion
from repro.molecular.resize import ResizeMechanism
from repro.telemetry.events import MoleculeRemapped

#: Virtual nodes per molecule. 32 points keeps the largest/smallest
#: slice ratio within ~2x for the region sizes the paper uses, at a
#: ring-build cost that is negligible next to the resize itself.
VNODES = 32

#: Distinct successor molecules tried for one displaced line before it
#: spills (CRUSH-style bounded probe down the ring). Direct-mapped
#: molecules share the index function, so the line's slot can be busy on
#: its ring owner yet free on the next few — probing a handful of
#: successors converts most would-be spills into on-chip adoptions while
#: keeping remap work bounded.
PROBE_LIMIT = 8

_MASK = (1 << 64) - 1


def mix64(value: int) -> int:
    """splitmix64 finaliser: a deterministic 64-bit integer hash."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK
    return (value ^ (value >> 31)) & _MASK


def ring_points(molecule_id: int, vnodes: int = VNODES) -> list[int]:
    """The ring positions one molecule contributes (``vnodes`` points)."""
    return [mix64((molecule_id << 16) | replica) for replica in range(vnodes)]


class MoleculeRing:
    """A consistent-hash ring over a set of molecules.

    Built from scratch each time membership changes — correctness needs
    only that two rings over the same molecule set are identical, which
    the deterministic point function guarantees.
    """

    __slots__ = ("points", "owners")

    def __init__(self, molecules) -> None:
        pairs: list[tuple[int, Molecule]] = []
        for molecule in molecules:
            for point in ring_points(molecule.molecule_id):
                pairs.append((point, molecule))
        # Point collisions across molecules are possible in principle;
        # the molecule id tiebreak keeps the ring deterministic anyway.
        pairs.sort(key=lambda pair: (pair[0], pair[1].molecule_id))
        self.points = [point for point, _ in pairs]
        self.owners = [molecule for _, molecule in pairs]

    def owner(self, key: int) -> Molecule:
        """The molecule owning ``key``: first point at or after its hash."""
        if not self.points:
            raise SimulationError("consistent-hash ring has no molecules")
        index = bisect_left(self.points, mix64(key))
        if index == len(self.points):
            index = 0
        return self.owners[index]

    def owners_from(self, key: int):
        """Distinct molecules in ring order starting at ``key``'s owner.

        The CRUSH-style candidate sequence: the owner first, then each
        later point's molecule the first time it appears, wrapping round
        the ring. Deterministic for a given membership set.
        """
        if not self.points:
            raise SimulationError("consistent-hash ring has no molecules")
        start = bisect_left(self.points, mix64(key))
        seen: set[int] = set()
        for offset in range(len(self.owners)):
            molecule = self.owners[(start + offset) % len(self.owners)]
            if molecule.molecule_id in seen:
                continue
            seen.add(molecule.molecule_id)
            yield molecule


class ConsistentHashMechanism(ResizeMechanism):
    """CRUSH-style resize backend: migrate remapped blocks, don't flush."""

    name = "chash"

    def __init__(self, resizer) -> None:
        super().__init__(resizer)
        #: asid -> (region membership version, ring) — rebuilt lazily.
        self._rings: dict[int, tuple[int, MoleculeRing]] = {}

    def _ring(self, region: CacheRegion) -> MoleculeRing:
        cached = self._rings.get(region.asid)
        if cached is not None and cached[0] == region.version:
            return cached[1]
        ring = MoleculeRing(region.molecules())
        self._rings[region.asid] = (region.version, ring)
        return ring

    @staticmethod
    def _key(region: CacheRegion, block: int) -> int:
        # Replacement-unit granularity: sibling lines of one unit share a
        # key, so they land on the same molecule (consecutive slots).
        return block // region.line_multiplier

    # -------------------------------------------------------------- hooks

    def _choose_victim(self, region: CacheRegion) -> Molecule:
        # Weighted-ring victim selection: vacate the molecule whose slice
        # holds the least data. Displacement cost is one transfer per
        # resident line plus one memory writeback per dirty line, so the
        # key weighs dirty lines double; the placement policy's
        # remote-first tie-break is preserved.
        def cost(molecule: Molecule) -> tuple:
            resident = 0
            dirty = 0
            for index, block in enumerate(molecule.lines):
                if block is None:
                    continue
                resident += 1
                if molecule.dirty[index]:
                    dirty += 1
            return (
                resident + dirty,
                resident,
                molecule.tile_id == region.home_tile_id,
                molecule.molecule_id,
            )

        candidates = list(region.molecules())
        if not candidates:
            raise SimulationError(f"region asid={region.asid} has no molecules")
        return min(candidates, key=cost)

    def _after_growth(
        self, region: CacheRegion, granted: list, total_accesses: int, action: str
    ) -> None:
        """Migrate resident blocks whose ring slice moved to new molecules."""
        ring = self._ring(region)  # membership version already bumped
        new_ids = {molecule.molecule_id for molecule in granted}
        placement = self.cache.placement
        moved = 0
        considered = 0
        for block, source in sorted(region.presence.items()):
            # Only dirty lines migrate eagerly: a clean line whose slice
            # moved costs nothing to refetch, so it rebalances lazily
            # through natural replacement instead of a resize-time copy.
            if not source.dirty[source.index_of(block)]:
                continue
            considered += 1
            target = ring.owner(self._key(region, block))
            if target.molecule_id not in new_ids:
                continue
            if region.move_block(block, target):
                placement.on_remap(region, block)
                moved += 1
        stats = self.cache.stats
        stats.resize_blocks_moved += moved
        stats.resize_remap_work += considered
        bus = getattr(self.cache, "telemetry", None)
        if bus is not None:
            bus.emit(
                MoleculeRemapped(
                    accesses=total_accesses,
                    asid=region.asid,
                    action=action,
                    count=len(granted),
                    moved=moved,
                    spilled=0,
                    molecules=region.molecule_count,
                )
            )

    def _reclaim(self, region: CacheRegion, molecule) -> tuple[int, int]:
        """Remap a withdrawn molecule's lines onto the survivors.

        Spills (no free slot on the new owner) follow the flush rules:
        dirty lines are written back, clean lines dropped, and the
        placement policy's eviction hook prunes their recency state.
        """
        flushed = region.detach_molecule(molecule)
        tile = self.cache.tile_of(molecule.tile_id)
        tile.release(molecule)
        ring = self._ring(region)  # survivors only: version bumped by detach
        placement = self.cache.placement
        moved = 0
        spilled = 0
        probes = 0
        for block, was_dirty in flushed:
            key = self._key(region, block)
            adopted = False
            for tried, target in enumerate(ring.owners_from(key), start=1):
                probes += 1
                if region.adopt_block(block, target, was_dirty):
                    placement.on_remap(region, block)
                    moved += 1
                    adopted = True
                    break
                if was_dirty:
                    # A dirty line is worth a slot: drop a clean occupant
                    # (writeback-free, like any replacement eviction) to
                    # keep the dirty data on-chip instead of spilling it.
                    dropped = region.drop_clean_line(
                        target, target.index_of(block)
                    )
                    if dropped is not None:
                        placement.on_evict(region, dropped)
                        if region.adopt_block(block, target, was_dirty):
                            placement.on_remap(region, block)
                            moved += 1
                            adopted = True
                            break
                if tried >= PROBE_LIMIT:
                    break
            if not adopted:
                if was_dirty:
                    spilled += 1
                placement.on_evict(region, block)
        stats = self.cache.stats
        stats.writebacks_to_memory += spilled
        stats.flush_writebacks += spilled
        stats.resize_spill_writebacks += spilled
        # All resident lines were displaced (adopted on-chip or spilled);
        # symmetric with the flush backend's accounting, so data-moved
        # comparisons subtract out to "dirty lines adopted instead of
        # written back" minus grow-side migration.
        stats.resize_blocks_moved += len(flushed)
        stats.resize_remap_work += probes
        return spilled, moved

    def _after_withdraw(
        self,
        region: CacheRegion,
        withdrawn: int,
        moved: int,
        writebacks: int,
        total_accesses: int,
    ) -> None:
        bus = getattr(self.cache, "telemetry", None)
        if bus is not None:
            bus.emit(
                MoleculeRemapped(
                    accesses=total_accesses,
                    asid=region.asid,
                    action="withdraw",
                    count=withdrawn,
                    moved=moved,
                    spilled=writebacks,
                    molecules=region.molecule_count,
                )
            )
