"""Batched access engine: the molecular cache's streaming hot path.

Every paper artifact is millions of ``access_block`` calls, and the
scalar path redoes invariant work on each one: the region/tile/shared
dictionary lookups, the probe-count recomputation, an
:class:`~repro.common.types.AccessResult` allocation (plus its ``extra``
dict), a latency-model call and a resizer hook call. All of that is
per-*region* state that only changes at resize, migration or
shared-region events — so this module hoists it into an immutable
:class:`AccessContext` and streams whole trace arrays through a loop
whose steady state is local-variable arithmetic plus the presence-map
lookup.

Equivalence contract
--------------------
The engine is an *optimisation*, never a semantic fork: for any access
sequence the resulting stats dicts, telemetry event streams, resize
decisions and occupancy reports are byte-identical to replaying the same
sequence through the scalar ``MolecularCache.access_block`` (the
retained reference implementation). ``tests/test_prop_batched.py``
asserts this property over randomized traces. Concretely:

* every counter the scalar path touches is updated per access (through
  cached references, not method calls), so mid-stream observers — the
  resize trigger, telemetry epoch rollovers, warm-up snapshots — see
  exactly the values they would have seen;
* the resize trigger is inlined (two integer compares) and fires the
  same ``Resizer`` methods at the same access counts;
* when a telemetry bus is attached the engine builds the same
  ``AccessResult`` the scalar path would and feeds
  ``bus.record_access`` per access; with no bus attached no result
  object is ever constructed.

Context invalidation
--------------------
A context is valid while both hold:

* ``region.version`` is unchanged — bumped by
  :meth:`~repro.molecular.region.CacheRegion.invalidate_search_order`
  on every molecule grant/withdrawal and home-tile migration;
* the cache's ``_ctx_epoch`` is unchanged — bumped by region
  assignment, shared-region creation, migration, and by the resizer
  whenever a resize round fires (a global resize can reset stats
  windows of regions whose membership did not change, and an external
  ``force_resize`` must invalidate live sessions the same way).

Within one :meth:`AccessEngine.stream` call only the engine itself can
trigger invalidation (resize fires), which it detects directly; the
version checks guard the persistent per-access :meth:`AccessEngine.access`
session path used by :class:`~repro.sim.cmp.CMPRunner`.

A custom :class:`~repro.molecular.latency.LatencyModel` subclass (one
that overrides ``cycles``) disables the precomputed cycle constants and
drops the whole stream to the scalar reference path — correctness first.
"""

from __future__ import annotations

from itertools import repeat

import numpy as np

from repro.common.errors import ConfigError, UnknownASIDError
from repro.common.types import AccessResult
from repro.molecular.latency import LatencyModel
from repro.molecular.placement import PlacementPolicy


def _as_scalar_sequence(values, n, name):
    """Normalise a column to (list | None, scalar) for the stream loop.

    Returns ``(per_ref_list, broadcast_scalar)`` — exactly one of the two
    is meaningful. Numpy arrays are converted once with ``tolist()``
    (plain ints iterate and hash faster than numpy scalars in a pure
    Python loop); lists/tuples pass through unchanged.
    """
    if isinstance(values, np.ndarray):
        if values.ndim != 1:
            raise ConfigError(f"{name} must be one-dimensional")
        values = values.tolist()
    if isinstance(values, (list, tuple)):
        if len(values) != n:
            raise ConfigError(
                f"{name} length {len(values)} != {n} blocks"
            )
        return values, None
    return None, values


class AccessContext:
    """Immutable per-region snapshot of every invariant an access needs.

    Built once per (engine, asid) and reused until a resize, migration
    or shared-region event invalidates it. All fields are plain
    attributes so the hot loop reads them without method calls.
    """

    __slots__ = (
        "asid",
        "region",
        "region_version",
        "cache_epoch",
        "home_tile",
        "home_tile_id",
        "home_comparisons",
        "local_probes",
        "region_lookup",
        "shared_lookup",
        "shared_region",
        "remote_stop",
        "remote_full",
        "has_remote",
        "ulmo_stats",
        "molecule_count",
        "line_multiplier",
        "hit_cycles",
        "miss_cycles",
        "dispatch_cycles",
        "per_tile_cycles",
        "total_counters",
        "window_counters",
        "managed",
    )


class AccessEngine:
    """Streams references through a molecular cache via cached contexts.

    One engine is built per :meth:`~repro.molecular.cache.MolecularCache.
    access_many` call (contexts must not outlive external stats resets),
    or held for the duration of a run as a per-access *session* by
    drivers that interleave applications one reference at a time
    (:class:`~repro.sim.cmp.CMPRunner`). A session assumes the cache's
    stats are not reset behind its back; drivers that need a mid-run
    reset (warm-up) split the stream instead.
    """

    __slots__ = ("cache", "stats", "placement", "rng", "resizer",
                 "advisor", "per_app", "on_hit_live", "on_evict_live",
                 "lines_per_molecule", "contexts", "fast_latency")

    def __init__(self, cache) -> None:
        self.cache = cache
        self.stats = cache.stats
        self.placement = cache.placement
        self.rng = cache.rng
        self.resizer = cache.resizer
        self.advisor = cache.resizer.advisor
        self.per_app = cache.resizer.policy.trigger == "per_app_adaptive"
        self.on_hit_live = (
            type(cache.placement).on_hit is not PlacementPolicy.on_hit
        )
        self.on_evict_live = (
            type(cache.placement).on_evict is not PlacementPolicy.on_evict
        )
        self.lines_per_molecule = cache.config.lines_per_molecule
        self.contexts: dict[int, AccessContext] = {}
        self.fast_latency = type(cache.latency_model).cycles is LatencyModel.cycles

    # ------------------------------------------------------------- contexts

    def _build_context(self, asid: int) -> AccessContext:
        cache = self.cache
        region = cache.regions.get(asid)
        if region is None:
            raise UnknownASIDError(asid)
        ctx = AccessContext()
        ctx.asid = asid
        ctx.region = region
        ctx.region_version = region.version
        ctx.cache_epoch = cache._ctx_epoch
        home_id = region.home_tile_id
        ctx.home_tile_id = home_id
        home_tile = cache._tiles[home_id]
        ctx.home_tile = home_tile
        ctx.home_comparisons = home_tile.comparator_count

        shared = cache._shared_regions.get(home_id)
        local_probes = region.molecules_by_tile.get(home_id, 0)
        if shared is not None and shared is not region:
            local_probes += home_tile.shared_count
            ctx.shared_lookup = shared.presence.get
            ctx.shared_region = shared
        else:
            ctx.shared_lookup = None
            ctx.shared_region = None
        ctx.local_probes = local_probes
        ctx.region_lookup = region.presence.get

        # Remote search tables: cumulative (tiles, probes, comparisons,
        # extra degraded-port cycles) along Ulmo's deterministic order,
        # keyed by the tile the search stops at; the final accumulation is
        # the global-miss full walk.
        tiles = probes = comparisons = extra = 0
        stop: dict[int, tuple[int, int, int, int]] = {}
        contributing = region.contributing_tiles()
        for tile_id in contributing:
            if tile_id == home_id:
                continue
            tiles += 1
            probes += region.molecules_by_tile[tile_id]
            tile = cache._tiles[tile_id]
            comparisons += tile.comparator_count
            extra += tile.extra_port_cycles
            stop[tile_id] = (tiles, probes, comparisons, extra)
        ctx.remote_stop = stop
        ctx.remote_full = (tiles, probes, comparisons, extra)
        ctx.has_remote = bool(contributing) and (
            contributing[0] != home_id or len(contributing) > 1
        )

        ctx.ulmo_stats = cache.clusters[home_tile.cluster_id].ulmo.stats
        ctx.molecule_count = region.molecule_count
        ctx.line_multiplier = region.line_multiplier

        hit_cycles, memory, dispatch, per_tile = cache.latency_model.constants()
        # A degraded home tile charges its port penalty on every access,
        # so it folds straight into the per-access constants.
        hit_cycles += home_tile.extra_port_cycles
        ctx.hit_cycles = hit_cycles
        ctx.miss_cycles = hit_cycles + memory
        ctx.dispatch_cycles = dispatch
        ctx.per_tile_cycles = per_tile

        total_counters, window_counters = self.stats.counters_for(asid)
        ctx.total_counters = total_counters
        ctx.window_counters = window_counters
        ctx.managed = region.goal is not None
        return ctx

    def _context(self, asid: int) -> AccessContext:
        ctx = self.contexts.get(asid)
        if (
            ctx is None
            or ctx.region_version != ctx.region.version
            or ctx.cache_epoch != self.cache._ctx_epoch
        ):
            ctx = self._build_context(asid)
            self.contexts[asid] = ctx
        return ctx

    # ------------------------------------------------------------ streaming

    def stream(self, blocks, asids=0, writes=False) -> int:
        """Simulate a whole reference stream; returns the access count.

        ``blocks`` is a sequence of block numbers (numpy array, list or
        tuple); ``asids``/``writes`` are parallel sequences or scalars
        broadcast to every reference.
        """
        if isinstance(blocks, np.ndarray):
            if blocks.ndim != 1:
                raise ConfigError("blocks must be one-dimensional")
            blocks = blocks.tolist()
        elif not isinstance(blocks, (list, tuple)):
            blocks = list(blocks)
        n = len(blocks)
        asid_list, asid_scalar = _as_scalar_sequence(asids, n, "asids")
        write_list, write_scalar = _as_scalar_sequence(writes, n, "writes")
        if n == 0:
            return 0
        if not self.fast_latency:
            # Custom latency model: take the scalar reference path.
            access_block = self.cache.access_block
            asid_iter = asid_list if asid_list is not None else repeat(asid_scalar)
            write_iter = (
                write_list if write_list is not None else repeat(write_scalar)
            )
            for block, asid, write in zip(blocks, asid_iter, write_iter):
                access_block(block, int(asid), bool(write))
            return n

        cache = self.cache
        stats = self.stats
        placement = self.placement
        rng = self.rng
        resizer = self.resizer
        advisor = self.advisor
        per_app = self.per_app
        on_hit_live = self.on_hit_live
        on_evict_live = self.on_evict_live
        lines_per_molecule = self.lines_per_molecule
        bus = cache.telemetry

        tot = stats.total
        wtot = stats.window_total
        next_global_at = resizer.next_global_at

        # Unpacked context of the asid being streamed; refreshed on asid
        # change and after any resize fires (cur_asid sentinel). Within
        # this loop nothing else can invalidate a context.
        cur_asid: int | None = None
        ctx = region = home_tile = None
        region_lookup = shared_lookup = None
        tc = wc = None
        local_probes = home_comparisons = hit_cycles = 0
        molecule_count = managed = None

        asid_iter = asid_list if asid_list is not None else repeat(asid_scalar)
        write_iter = write_list if write_list is not None else repeat(write_scalar)
        for block, asid, write in zip(blocks, asid_iter, write_iter):
            if asid != cur_asid:
                ctx = self._context(asid)
                cur_asid = asid
                region = ctx.region
                home_tile = ctx.home_tile
                region_lookup = ctx.region_lookup
                shared_lookup = ctx.shared_lookup
                tc = ctx.total_counters
                wc = ctx.window_counters
                local_probes = ctx.local_probes
                home_comparisons = ctx.home_comparisons
                hit_cycles = ctx.hit_cycles
                molecule_count = ctx.molecule_count
                managed = ctx.managed

            home_tile.port_accesses += 1
            result = None
            remote_tiles = 0

            molecule = region_lookup(block)
            if molecule is None and shared_lookup is not None:
                molecule = shared_lookup(block)

            if molecule is not None:
                if molecule.tile_id != ctx.home_tile_id:
                    ulmo_stats = ctx.ulmo_stats
                    ulmo_stats.tile_misses += 1
                    ulmo_stats.remote_hits += 1
                    remote_tiles, remote_probes, comparisons, remote_extra = (
                        ctx.remote_stop[molecule.tile_id]
                    )
                    stats.molecules_probed_remote += remote_probes
                    stats.asid_comparisons += comparisons + home_comparisons
                    stats.latency_cycles += (
                        hit_cycles
                        + ctx.dispatch_cycles
                        + remote_tiles * ctx.per_tile_cycles
                        + remote_extra
                    )
                else:
                    remote_probes = 0
                    stats.asid_comparisons += home_comparisons
                    stats.latency_cycles += hit_cycles
                stats.molecules_probed_local += local_probes
                if write:
                    molecule.mark_dirty(block)
                if on_hit_live:
                    # Recency belongs to the serving region (the hit may
                    # have come from the tile's shared region).
                    if shared_lookup is not None and region_lookup(block) is None:
                        placement.on_hit(ctx.shared_region, block)
                    else:
                        placement.on_hit(region, block)
                tot.accesses += 1
                tot.hits += 1
                wtot.accesses += 1
                wtot.hits += 1
                tc.accesses += 1
                tc.hits += 1
                wc.accesses += 1
                wc.hits += 1
                region.window_accesses += 1
                region.total_accesses += 1
                region.molecule_integral += molecule_count
                if bus is not None:
                    result = AccessResult(
                        hit=True,
                        molecules_probed_local=local_probes,
                        molecules_probed_remote=remote_probes,
                    )
            else:
                ulmo_stats = ctx.ulmo_stats
                if ctx.has_remote:
                    ulmo_stats.tile_misses += 1
                    remote_tiles, remote_probes, comparisons, remote_extra = (
                        ctx.remote_full
                    )
                    stats.molecules_probed_remote += remote_probes
                    stats.asid_comparisons += comparisons + home_comparisons
                else:
                    remote_probes = 0
                    stats.asid_comparisons += home_comparisons
                ulmo_stats.global_misses += 1
                # Charged before the placement decision, like the scalar
                # reference — identical partial state if placement raises.
                stats.molecules_probed_local += local_probes

                target, row_index = placement.choose(
                    region, block, lines_per_molecule, rng
                )
                evicted = region.install(block, target, row_index, write)
                dirty = 0
                for _b, was_dirty in evicted:
                    if was_dirty:
                        dirty += 1
                    stats.record_eviction(asid, was_dirty)
                if on_evict_live:
                    for b, _was_dirty in evicted:
                        placement.on_evict(region, b)
                stats.writebacks_to_memory += dirty
                stats.lines_fetched += ctx.line_multiplier
                cycles = ctx.miss_cycles
                if remote_tiles:
                    cycles += (
                        ctx.dispatch_cycles
                        + remote_tiles * ctx.per_tile_cycles
                        + remote_extra
                    )
                stats.latency_cycles += cycles
                tot.accesses += 1
                wtot.accesses += 1
                tc.accesses += 1
                wc.accesses += 1
                region.window_accesses += 1
                region.window_misses += 1
                region.total_accesses += 1
                region.total_misses += 1
                region.molecule_integral += molecule_count
                if bus is not None:
                    result = AccessResult(
                        hit=False,
                        evicted_block=evicted[0][0] if evicted else None,
                        writeback=dirty > 0,
                        molecules_probed_local=local_probes,
                        molecules_probed_remote=remote_probes,
                        lines_filled=ctx.line_multiplier,
                    )

            # Inlined Resizer.on_access: identical trigger conditions,
            # identical fire points; a fire invalidates every context.
            if advisor is not None:
                advisor.observe(region, block)
            if per_app:
                if managed and region.total_accesses >= region.next_resize_at:
                    resizer._resize_one(region, tot.accesses)
                    cur_asid = None
                    tot = stats.total
                    wtot = stats.window_total
            elif tot.accesses >= next_global_at:
                resizer._resize_all(tot.accesses)
                cur_asid = None
                tot = stats.total
                wtot = stats.window_total
                next_global_at = resizer.next_global_at

            if bus is not None:
                if remote_tiles:
                    result.extra["remote_tiles_searched"] = remote_tiles
                bus.record_access(asid, block, write, result, remote_tiles)
        return n

    # ------------------------------------------------------------- sessions

    def access(self, block: int, asid: int = 0, write: bool = False) -> bool:
        """One allocation-free access; returns the hit flag.

        The per-access twin of :meth:`stream` for drivers that cannot
        batch (feedback schedulers interleaving applications reference
        by reference). Contexts persist across calls and revalidate
        against the region version and cache epoch on every call.
        """
        if not self.fast_latency:
            return self.cache.access_block(block, asid, write).hit
        ctx = self.contexts.get(asid)
        if (
            ctx is None
            or ctx.region_version != ctx.region.version
            or ctx.cache_epoch != self.cache._ctx_epoch
        ):
            ctx = self._build_context(asid)
            self.contexts[asid] = ctx

        cache = self.cache
        stats = self.stats
        region = ctx.region
        tot = stats.total
        wtot = stats.window_total
        tc = ctx.total_counters
        wc = ctx.window_counters
        local_probes = ctx.local_probes
        bus = cache.telemetry
        ctx.home_tile.port_accesses += 1
        result = None
        remote_tiles = 0

        molecule = ctx.region_lookup(block)
        if molecule is None and ctx.shared_lookup is not None:
            molecule = ctx.shared_lookup(block)

        if molecule is not None:
            hit = True
            if molecule.tile_id != ctx.home_tile_id:
                ulmo_stats = ctx.ulmo_stats
                ulmo_stats.tile_misses += 1
                ulmo_stats.remote_hits += 1
                remote_tiles, remote_probes, comparisons, remote_extra = (
                    ctx.remote_stop[molecule.tile_id]
                )
                stats.molecules_probed_remote += remote_probes
                stats.asid_comparisons += comparisons + ctx.home_comparisons
                stats.latency_cycles += (
                    ctx.hit_cycles
                    + ctx.dispatch_cycles
                    + remote_tiles * ctx.per_tile_cycles
                    + remote_extra
                )
            else:
                remote_probes = 0
                stats.asid_comparisons += ctx.home_comparisons
                stats.latency_cycles += ctx.hit_cycles
            stats.molecules_probed_local += local_probes
            if write:
                molecule.mark_dirty(block)
            if self.on_hit_live:
                # Recency belongs to the serving region (the hit may have
                # come from the tile's shared region).
                if ctx.shared_lookup is not None and ctx.region_lookup(block) is None:
                    self.placement.on_hit(ctx.shared_region, block)
                else:
                    self.placement.on_hit(region, block)
            tot.accesses += 1
            tot.hits += 1
            wtot.accesses += 1
            wtot.hits += 1
            tc.accesses += 1
            tc.hits += 1
            wc.accesses += 1
            wc.hits += 1
            region.window_accesses += 1
            region.total_accesses += 1
            region.molecule_integral += ctx.molecule_count
            if bus is not None:
                result = AccessResult(
                    hit=True,
                    molecules_probed_local=local_probes,
                    molecules_probed_remote=remote_probes,
                )
        else:
            hit = False
            ulmo_stats = ctx.ulmo_stats
            if ctx.has_remote:
                ulmo_stats.tile_misses += 1
                remote_tiles, remote_probes, comparisons, remote_extra = (
                    ctx.remote_full
                )
                stats.molecules_probed_remote += remote_probes
                stats.asid_comparisons += comparisons + ctx.home_comparisons
            else:
                remote_probes = 0
                stats.asid_comparisons += ctx.home_comparisons
            ulmo_stats.global_misses += 1
            # Charged before the placement decision, like the scalar
            # reference — identical partial state if placement raises.
            stats.molecules_probed_local += local_probes
            target, row_index = self.placement.choose(
                region, block, self.lines_per_molecule, self.rng
            )
            evicted = region.install(block, target, row_index, write)
            dirty = 0
            for _b, was_dirty in evicted:
                if was_dirty:
                    dirty += 1
                stats.record_eviction(asid, was_dirty)
            if self.on_evict_live:
                for b, _was_dirty in evicted:
                    self.placement.on_evict(region, b)
            stats.writebacks_to_memory += dirty
            stats.lines_fetched += ctx.line_multiplier
            cycles = ctx.miss_cycles
            if remote_tiles:
                cycles += (
                    ctx.dispatch_cycles
                    + remote_tiles * ctx.per_tile_cycles
                    + remote_extra
                )
            stats.latency_cycles += cycles
            tot.accesses += 1
            wtot.accesses += 1
            tc.accesses += 1
            wc.accesses += 1
            region.window_accesses += 1
            region.window_misses += 1
            region.total_accesses += 1
            region.total_misses += 1
            region.molecule_integral += ctx.molecule_count
            if bus is not None:
                result = AccessResult(
                    hit=False,
                    evicted_block=evicted[0][0] if evicted else None,
                    writeback=dirty > 0,
                    molecules_probed_local=local_probes,
                    molecules_probed_remote=remote_probes,
                    lines_filled=ctx.line_multiplier,
                )

        if self.advisor is not None:
            self.advisor.observe(region, block)
        if self.per_app:
            if ctx.managed and region.total_accesses >= region.next_resize_at:
                self.resizer._resize_one(region, tot.accesses)
        elif tot.accesses >= self.resizer.next_global_at:
            self.resizer._resize_all(tot.accesses)

        if bus is not None:
            if remote_tiles:
                result.extra["remote_tiles_searched"] = remote_tiles
            bus.record_access(asid, block, write, result, remote_tiles)
        return hit
