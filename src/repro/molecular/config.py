"""Configuration objects for molecular caches.

:class:`MolecularCacheConfig` fixes the physical organisation (molecule,
tile and cluster geometry — Table 3 of the paper); :class:`ResizePolicy`
fixes the behaviour of the resizing engine (section 3.4 / Algorithm 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.bitops import is_power_of_two
from repro.common.errors import ConfigError

#: Molecule sizes the paper endorses (from Mamidipaka & Dutt's power data).
MOLECULE_SIZE_RANGE = (8 * 1024, 32 * 1024)
#: Molecules per tile the paper endorses.
MOLECULES_PER_TILE_RANGE = (32, 256)
#: Tiles per cluster the paper endorses.
TILES_PER_CLUSTER_RANGE = (4, 8)


@dataclass(frozen=True, slots=True)
class ResizePolicy:
    """Behaviour of the dynamic resizing engine (paper section 3.4).

    Parameters
    ----------
    period:
        Initial resize period, in addresses serviced by the cache. The
        paper determined ~25 000 references experimentally.
    trigger:
        ``"constant"`` — resize every ``period`` references;
        ``"global_adaptive"`` — the period doubles when the overall cache
        miss rate meets the (access-weighted) goal and shrinks to 10 % of
        itself when it does not;
        ``"per_app_adaptive"`` — like global, but each application keeps
        its own period driven by its own miss rate.
    max_allocation:
        The largest number of molecules granted in one resize step ("Do
        not allocate more than the maximum allowed in one chunk").
    min_molecules:
        A partition is never shrunk below this ("Ground Zero" floor).
    initial_fraction_of_tile:
        Default initial allocation: this fraction of a tile's molecules
        ("each partition is provided with half the number of molecules
        contained in a tile in the beginning").
    panic_miss_rate:
        Algorithm 1's first branch: above this windowed miss rate the
        partition immediately grows by ``max_allocation`` (which is first
        clamped down to the previous grant).
    grow_when_worsening:
        Algorithm 1 grows via the linear model only while the miss rate is
        *improving* (``miss rate < last miss rate``). Setting this flag
        relaxes that condition — an ablation the resize benches exercise.
    period_floor / period_cap:
        Clamp for the adaptive period.
    min_window_refs:
        A partition whose resize window saw fewer references than this is
        left untouched (its miss-rate estimate would be noise).
    withdraw_margin:
        Hysteresis on the withdraw branch: molecules are taken back only
        while ``miss rate < goal * withdraw_margin``. The paper withdraws
        whenever the miss rate is below goal, which ping-pongs partitions
        across the goal boundary (withdraw overshoots, and Algorithm 1 only
        re-grows while the miss rate is *improving*); a margin below 1.0
        keeps converged partitions stable. Set to 1.0 for the paper's
        literal rule.
    advisor:
        ``"linear"`` — Algorithm 1's linear size/miss model (the paper's
        scheme); ``"stack"`` — the future-work reuse-distance advisor
        with cold-miss compensation (:mod:`repro.molecular.advisor`).
    mechanism:
        How capacity changes are *applied* once Algorithm 1 has decided
        (DESIGN.md section 13). ``"flush"`` — the paper's behaviour:
        withdrawn molecules are flushed whole (dirty lines written back,
        clean lines dropped). ``"chash"`` — consistent-hashing remap
        (:mod:`repro.molecular.chash`): resident lines of a withdrawn
        molecule move onto the survivors' hash-ring slices, and grown
        molecules pull in only the resident blocks whose ring slice
        moved, so a resize transfers data instead of discarding it.
    """

    period: int = 25_000
    trigger: str = "global_adaptive"
    max_allocation: int = 16
    min_molecules: int = 2
    initial_fraction_of_tile: float = 0.5
    panic_miss_rate: float = 0.5
    grow_when_worsening: bool = False
    period_floor: int = 2_500
    period_cap: int = 400_000
    min_window_refs: int = 64
    withdraw_margin: float = 0.8
    advisor: str = "linear"
    mechanism: str = "flush"

    def __post_init__(self) -> None:
        if self.trigger not in ("constant", "global_adaptive", "per_app_adaptive"):
            raise ConfigError(
                f"unknown resize trigger {self.trigger!r}; expected constant, "
                "global_adaptive or per_app_adaptive"
            )
        if self.period < 1:
            raise ConfigError("resize period must be positive")
        if self.max_allocation < 1:
            raise ConfigError("max_allocation must be >= 1")
        if self.min_molecules < 1:
            raise ConfigError("min_molecules must be >= 1")
        if not 0.0 < self.initial_fraction_of_tile <= 1.0:
            raise ConfigError("initial_fraction_of_tile must be in (0, 1]")
        if not 0.0 < self.panic_miss_rate <= 1.0:
            raise ConfigError("panic_miss_rate must be in (0, 1]")
        if self.period_floor < 1 or self.period_cap < self.period_floor:
            raise ConfigError("need 1 <= period_floor <= period_cap")
        if not 0.0 < self.withdraw_margin <= 1.0:
            raise ConfigError("withdraw_margin must be in (0, 1]")
        if self.advisor not in ("linear", "stack"):
            raise ConfigError(
                f"unknown resize advisor {self.advisor!r}; expected "
                "'linear' or 'stack'"
            )
        if self.mechanism not in ("flush", "chash"):
            raise ConfigError(
                f"unknown resize mechanism {self.mechanism!r}; expected "
                "'flush' or 'chash'"
            )


@dataclass(frozen=True, slots=True)
class MolecularCacheConfig:
    """Physical organisation of a molecular cache.

    The defaults are the paper's Table 3 configuration: 8 KB molecules
    with 64 B lines, 64 molecules per 512 KB tile, 4 tiles per cluster,
    4 clusters — an 8 MB cache.

    Set ``strict=False`` to allow geometries outside the ranges the paper
    endorses (useful for small unit-test caches).
    """

    molecule_bytes: int = 8 * 1024
    line_bytes: int = 64
    molecules_per_tile: int = 64
    tiles_per_cluster: int = 4
    clusters: int = 4
    placement: str = "randy"
    rng_seed: int = 0xC0FFEE
    miss_penalty_cycles: int = 200
    strict: bool = True

    def __post_init__(self) -> None:
        if not is_power_of_two(self.molecule_bytes):
            raise ConfigError("molecule size must be a power of two")
        if not is_power_of_two(self.line_bytes):
            raise ConfigError("line size must be a power of two")
        if self.line_bytes >= self.molecule_bytes:
            raise ConfigError("molecule must hold more than one line")
        if self.molecules_per_tile < 1 or self.tiles_per_cluster < 1 or self.clusters < 1:
            raise ConfigError("tile/cluster geometry must be positive")
        if self.strict:
            lo, hi = MOLECULE_SIZE_RANGE
            if not lo <= self.molecule_bytes <= hi:
                raise ConfigError(
                    f"molecule size {self.molecule_bytes} outside the paper's "
                    f"{lo}-{hi} B range (pass strict=False to override)"
                )
            lo, hi = MOLECULES_PER_TILE_RANGE
            if not lo <= self.molecules_per_tile <= hi:
                raise ConfigError(
                    f"{self.molecules_per_tile} molecules/tile outside the "
                    f"paper's {lo}-{hi} range (pass strict=False to override)"
                )
            lo, hi = TILES_PER_CLUSTER_RANGE
            if not lo <= self.tiles_per_cluster <= hi:
                raise ConfigError(
                    f"{self.tiles_per_cluster} tiles/cluster outside the "
                    f"paper's {lo}-{hi} range (pass strict=False to override)"
                )

    # ------------------------------------------------------------ geometry

    @property
    def lines_per_molecule(self) -> int:
        return self.molecule_bytes // self.line_bytes

    @property
    def tile_bytes(self) -> int:
        return self.molecule_bytes * self.molecules_per_tile

    @property
    def cluster_bytes(self) -> int:
        return self.tile_bytes * self.tiles_per_cluster

    @property
    def total_bytes(self) -> int:
        return self.cluster_bytes * self.clusters

    @property
    def total_tiles(self) -> int:
        return self.tiles_per_cluster * self.clusters

    @property
    def total_molecules(self) -> int:
        return self.molecules_per_tile * self.total_tiles

    @classmethod
    def for_total_size(
        cls,
        total_bytes: int,
        clusters: int = 1,
        tiles_per_cluster: int = 4,
        molecule_bytes: int = 8 * 1024,
        **kwargs,
    ) -> "MolecularCacheConfig":
        """Build the geometry for a target total capacity.

        Used by the Figure 5 sweep: e.g. 1 MB with one 4-tile cluster
        gives 256 KB tiles of 32 molecules.
        """
        tile_bytes = total_bytes // (clusters * tiles_per_cluster)
        if tile_bytes * clusters * tiles_per_cluster != total_bytes:
            raise ConfigError(
                f"{total_bytes} B does not divide into {clusters} clusters "
                f"of {tiles_per_cluster} tiles"
            )
        if tile_bytes % molecule_bytes:
            raise ConfigError(
                f"tile size {tile_bytes} is not a multiple of the molecule "
                f"size {molecule_bytes}"
            )
        return cls(
            molecule_bytes=molecule_bytes,
            molecules_per_tile=tile_bytes // molecule_bytes,
            tiles_per_cluster=tiles_per_cluster,
            clusters=clusters,
            **kwargs,
        )

    def table3_summary(self) -> dict:
        """The Table 3 row for this configuration."""
        return {
            "total_cache_size": self.total_bytes,
            "molecule_size": self.molecule_bytes,
            "tile_size": self.tile_bytes,
            "tile_clusters": self.clusters,
            "tiles_per_cluster": self.tiles_per_cluster,
            "read_write_ports": f"1 per tile cluster ({self.clusters} total)",
            "associativity": "adaptive",
        }
