"""Access-latency accounting for molecular caches.

The paper notes two timing consequences of the design: the ASID
comparison "would increase the number of cycles consumed by an additional
cycle" (section 3.1), and the hierarchical lookup serialises — the home
tile is searched first, then Ulmo walks the other contributing tiles one
by one (section 3.3). This module turns each access's outcome into a cycle
count so runs can report mean hit/miss latency alongside miss rates.

Cycle parameters are deliberately coarse (the reproduction's timing claims
are relative, not absolute); defaults reflect a fast small direct-mapped
array under a ~200 MHz L2 clock domain.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.common.types import AccessResult


@dataclass(frozen=True, slots=True)
class LatencyParameters:
    """Cycle costs of the access-path stages.

    asid_compare_cycles:
        The extra decode stage of Figure 3 (paper: one cycle).
    molecule_access_cycles:
        Parallel probe of a tile's ASID-matching molecules.
    ulmo_dispatch_cycles:
        Tile-miss handling overhead in the controller.
    tile_hop_cycles:
        Interconnect hop + probe of one remote tile (remote tiles are
        searched sequentially).
    memory_cycles:
        Fetch on a global miss.
    """

    asid_compare_cycles: int = 1
    molecule_access_cycles: int = 2
    ulmo_dispatch_cycles: int = 2
    tile_hop_cycles: int = 4
    memory_cycles: int = 200

    def __post_init__(self) -> None:
        for name in (
            "asid_compare_cycles",
            "molecule_access_cycles",
            "ulmo_dispatch_cycles",
            "tile_hop_cycles",
            "memory_cycles",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} cannot be negative")


class LatencyModel:
    """Maps one access outcome to a cycle count."""

    __slots__ = ("params",)

    def __init__(self, params: LatencyParameters | None = None) -> None:
        self.params = params or LatencyParameters()

    def cycles(self, result: AccessResult) -> int:
        """Latency of one access, from its recorded outcome.

        ``result.extra['remote_tiles_searched']`` (recorded by the cache)
        drives the serial remote-search term.
        """
        p = self.params
        cycles = p.asid_compare_cycles + p.molecule_access_cycles
        remote_tiles = result.extra.get("remote_tiles_searched", 0)
        if remote_tiles:
            cycles += p.ulmo_dispatch_cycles
            cycles += remote_tiles * (
                p.tile_hop_cycles + p.molecule_access_cycles
            )
        if result.miss:
            cycles += p.memory_cycles
        return cycles

    def local_hit_cycles(self) -> int:
        """Latency of the common case (hit in the home tile)."""
        return self.params.asid_compare_cycles + self.params.molecule_access_cycles

    def constants(self) -> tuple[int, int, int, int]:
        """Precomputed cycle constants for the batched access engine.

        Returns ``(local_hit, memory, ulmo_dispatch, per_remote_tile)``
        such that every outcome of :meth:`cycles` is
        ``local_hit [+ memory on a miss] [+ ulmo_dispatch +
        remote_tiles * per_remote_tile when tiles were searched]`` —
        the engine folds these into its per-region contexts instead of
        building an :class:`AccessResult` per access. A subclass that
        overrides :meth:`cycles` is detected by the engine and drops it
        back to the scalar path, so these constants never mask custom
        timing.
        """
        p = self.params
        return (
            p.asid_compare_cycles + p.molecule_access_cycles,
            p.memory_cycles,
            p.ulmo_dispatch_cycles,
            p.tile_hop_cycles + p.molecule_access_cycles,
        )
