"""The molecule: a small direct-mapped caching unit with ASID gating.

Molecules are the paper's "low power building blocks": 8-32 KB
direct-mapped arrays with 64-byte lines. Each molecule carries a
*configured ASID* and a *shared bit* (Figure 3): an access proceeds past
the ASID-comparison stage only if the requestor's ASID matches, or if the
shared bit is set. The simulator models that gate at the
:class:`~repro.molecular.cache.MolecularCache` level (it decides which
molecules are probed and charges their energy); the molecule itself is a
plain direct-mapped tag/data array.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigError, SimulationError

#: ASID value marking an unconfigured (free) molecule.
FREE = -1


class Molecule:
    """One direct-mapped caching unit.

    Lines are tracked by full block number (``lines[i]`` holds the block
    resident at index ``i``, or ``None``), which makes the direct-mapped
    tag check a single comparison: block ``b`` is present iff
    ``lines[b % n_lines] == b``.
    """

    __slots__ = (
        "molecule_id",
        "tile_id",
        "cluster_id",
        "n_lines",
        "index_mask",
        "lines",
        "dirty",
        "asid",
        "shared",
        "replacement_misses",
        "fills",
        "failed",
    )

    def __init__(
        self, molecule_id: int, tile_id: int, cluster_id: int, n_lines: int
    ) -> None:
        if n_lines < 2 or n_lines & (n_lines - 1):
            raise ConfigError(f"n_lines must be a power of two >= 2, got {n_lines}")
        self.molecule_id = molecule_id
        self.tile_id = tile_id
        self.cluster_id = cluster_id
        self.n_lines = n_lines
        #: ``n_lines`` is a power of two, so the direct-mapped index is a
        #: mask rather than a modulo — this is the hottest arithmetic in
        #: the scalar access path.
        self.index_mask = n_lines - 1
        self.lines: list[int | None] = [None] * n_lines
        #: Dirty bits as a flat bool array so the columnar engine can
        #: apply a whole chunk's write-hit marks in one fancy-index
        #: scatter. Reads that escape this class go through ``bool()``
        #: so no numpy scalar ever leaks into stats or reports.
        self.dirty: np.ndarray = np.zeros(n_lines, dtype=bool)
        self.asid: int = FREE
        self.shared: bool = False
        #: Misses that caused a replacement in this molecule — the
        #: per-molecule counter Algorithm 1 uses with Random placement.
        self.replacement_misses: int = 0
        self.fills: int = 0
        #: Hard-fault flag: a failed molecule is permanently out of
        #: service — excluded from the free pool, never reconfigured,
        #: and its ASID comparator no longer fires.
        self.failed: bool = False

    # ------------------------------------------------------------ ownership

    @property
    def is_free(self) -> bool:
        return self.asid == FREE and not self.shared and not self.failed

    def configure(self, asid: int, shared: bool = False) -> None:
        """Claim a free molecule for an application (or the shared pool)."""
        if not self.is_free:
            raise SimulationError(
                f"molecule {self.molecule_id} already configured for asid {self.asid}"
            )
        if asid < 0 and not shared:
            raise ConfigError(f"invalid ASID {asid}")
        self.asid = asid
        self.shared = shared

    def release(self) -> list[tuple[int, bool]]:
        """Flush and unconfigure; returns the flushed ``(block, dirty)`` pairs."""
        flushed = self.flush()
        self.asid = FREE
        self.shared = False
        self.replacement_misses = 0
        return flushed

    # ----------------------------------------------------------- tag array

    def index_of(self, block: int) -> int:
        return block & self.index_mask

    def probe(self, block: int) -> bool:
        """Direct-mapped lookup: tag match at the block's index."""
        return self.lines[block & self.index_mask] == block

    def fill(self, block: int, dirty: bool = False) -> tuple[int, bool] | None:
        """Install ``block``; returns the evicted ``(block, dirty)`` or None."""
        index = block & self.index_mask
        previous = self.lines[index]
        evicted = None
        if previous is not None and previous != block:
            evicted = (previous, bool(self.dirty[index]))
        self.lines[index] = block
        self.dirty[index] = dirty
        self.fills += 1
        return evicted

    def mark_dirty(self, block: int) -> None:
        index = block & self.index_mask
        if self.lines[index] != block:
            raise SimulationError(
                f"mark_dirty for block {block} not resident in molecule "
                f"{self.molecule_id}"
            )
        self.dirty[index] = True

    def invalidate(self, block: int) -> bool:
        """Drop one block if resident; returns its dirty bit (False if absent)."""
        index = block & self.index_mask
        if self.lines[index] != block:
            return False
        was_dirty = bool(self.dirty[index])
        self.lines[index] = None
        self.dirty[index] = False
        return was_dirty

    def flush(self) -> list[tuple[int, bool]]:
        """Drop every resident line; returns ``(block, dirty)`` pairs."""
        flushed = [
            (block, bool(self.dirty[index]))
            for index, block in enumerate(self.lines)
            if block is not None
        ]
        self.lines = [None] * self.n_lines
        self.dirty = np.zeros(self.n_lines, dtype=bool)
        return flushed

    def resident_blocks(self) -> list[int]:
        return [block for block in self.lines if block is not None]

    def occupancy(self) -> int:
        return sum(1 for block in self.lines if block is not None)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        if self.failed:
            owner = "failed"
        else:
            owner = "free" if self.is_free else ("shared" if self.shared else self.asid)
        return (
            f"Molecule(id={self.molecule_id}, tile={self.tile_id}, "
            f"owner={owner}, occ={self.occupancy()}/{self.n_lines})"
        )
