"""Unified lookup over every bundled benchmark model."""

from __future__ import annotations

from repro.workloads.mixed import MIXED_SUITE, mixed_model
from repro.workloads.model import BenchmarkModel
from repro.workloads.spec import SPEC_QUARTET, spec_model


def available_models() -> list[str]:
    """Names of every bundled model (SPEC quartet + mixed suite)."""
    names = set(SPEC_QUARTET) | set(MIXED_SUITE)
    return sorted(names)


def get_model(name: str) -> BenchmarkModel:
    """Look a model up by name across both suites.

    ``parser`` exists in both suites with identical parameters; the SPEC
    variant is returned.
    """
    if name in SPEC_QUARTET:
        return spec_model(name)
    if name in MIXED_SUITE:
        return mixed_model(name)
    raise KeyError(f"unknown model {name!r}; available: {available_models()}")
