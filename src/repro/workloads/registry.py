"""Unified lookup over every bundled benchmark model and workload family.

Two kinds of entries live here:

* **models** — ring-mixture :class:`~repro.workloads.model.BenchmarkModel`
  stand-ins (the SPEC quartet and the mixed suite), looked up with
  :func:`get_model`;
* **families** — named groups of workloads with a shared generator, the
  unit ``repro workloads`` lists. The ``tenants`` family's members are
  :class:`~repro.workloads.tenants.TenantWorkloadSpec` presets, looked up
  with :func:`get_tenant_spec`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.mixed import MIXED_SUITE, mixed_model
from repro.workloads.model import BenchmarkModel
from repro.workloads.spec import SPEC_QUARTET, spec_model
from repro.workloads.tenants import TENANT_SUITE, TenantWorkloadSpec, tenant_spec


def available_models() -> list[str]:
    """Names of every bundled model (SPEC quartet + mixed suite)."""
    names = set(SPEC_QUARTET) | set(MIXED_SUITE)
    return sorted(names)


def get_model(name: str) -> BenchmarkModel:
    """Look a model up by name across both suites.

    ``parser`` exists in both suites with identical parameters; the SPEC
    variant is returned.
    """
    if name in SPEC_QUARTET:
        return spec_model(name)
    if name in MIXED_SUITE:
        return mixed_model(name)
    raise KeyError(f"unknown model {name!r}; available: {available_models()}")


def get_tenant_spec(name: str) -> TenantWorkloadSpec:
    """Look a tenant workload preset up by name."""
    return tenant_spec(name)


# ----------------------------------------------------------------- families

@dataclass(frozen=True, slots=True)
class WorkloadFamily:
    """One listed workload family: a generator plus its bundled members."""

    name: str
    kind: str  # "model" (ring mixture) or "tenant" (cache-service mix)
    description: str
    members: tuple[str, ...]


FAMILIES: dict[str, WorkloadFamily] = {
    "spec": WorkloadFamily(
        name="spec",
        kind="model",
        description="SPEC CPU2000 stand-ins (Table 1 / Figure 5 quartet)",
        members=tuple(SPEC_QUARTET),
    ),
    "mixed": WorkloadFamily(
        name="mixed",
        kind="model",
        description="mixed 12-benchmark suite (Table 2: SPEC/NetBench/MediaBench)",
        members=tuple(MIXED_SUITE),
    ),
    "tenants": WorkloadFamily(
        name="tenants",
        kind="tenant",
        description="multi-tenant cache-service mixes (Zipf keys, churn, "
                    "bursts, diurnal phases)",
        members=tuple(TENANT_SUITE),
    ),
}


def available_families() -> list[WorkloadFamily]:
    """Every registered family, in registration order."""
    return list(FAMILIES.values())


def get_family(name: str) -> WorkloadFamily:
    try:
        return FAMILIES[name]
    except KeyError:
        raise KeyError(
            f"unknown workload family {name!r}; available: {sorted(FAMILIES)}"
        ) from None
