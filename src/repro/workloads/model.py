"""Ring-mixture workload model and its vectorised trace generator.

A benchmark is a weighted mixture of :class:`RingComponent`\\ s. Each
component is a ring of ``blocks`` cache blocks; a reference to the
component either continues the current sequential run (probability
``1 - 1/run_length``) or restarts the run at a uniformly random position in
the ring. This gives independent control over:

* **capacity behaviour** — ring sizes and weights shape the miss-rate vs
  cache-size curve (a ring that fits is all hits after warm-up; a ring much
  larger than the cache misses at roughly its weight);
* **spatial locality** — ``run_length`` sets how much a larger fetch line
  helps (the variable-line-size experiments);
* **phase behaviour** — a ``drift`` component moves to fresh blocks each
  phase, which is what exercises dynamic repartitioning.

Generation is fully vectorised (numpy) and deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.bitops import ilog2
from repro.common.errors import ConfigError
from repro.trace.container import Trace

#: Each application's address space starts at ``asid * APP_SPACE_BYTES`` so
#: shared traditional caches never see aliasing between applications.
APP_SPACE_BYTES = 1 << 40


@dataclass(frozen=True, slots=True)
class RingComponent:
    """One working-set tier of a benchmark model.

    Parameters
    ----------
    weight:
        Relative probability that a reference targets this ring.
    blocks:
        Ring size in cache blocks (64 B each by default).
    run_length:
        Mean sequential-run length; 1 means every reference jumps to a
        random position (pointer chasing), larger values mean streaming.
    drift:
        If true the ring occupies fresh addresses in every phase (working
        set migration). Drifting rings model program phases; they force a
        partition-resizing policy to react.
    """

    weight: float
    blocks: int
    run_length: int = 1
    drift: bool = False

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigError(f"component weight must be positive, got {self.weight}")
        if self.blocks < 1:
            raise ConfigError(f"ring must contain at least one block, got {self.blocks}")
        if self.run_length < 1:
            raise ConfigError(f"run length must be >= 1, got {self.run_length}")


@dataclass(frozen=True)
class BenchmarkModel:
    """A named ring-mixture benchmark.

    Parameters
    ----------
    name:
        Benchmark label (used in reports and plots).
    components:
        The ring mixture. Weights are normalised internally.
    phases:
        Number of equal-length phases per generated trace; drifting rings
        change position at phase boundaries.
    write_fraction:
        Probability that a reference is a write.
    """

    name: str
    components: tuple[RingComponent, ...]
    phases: int = 1
    write_fraction: float = 0.25

    def __post_init__(self) -> None:
        if not self.components:
            raise ConfigError(f"model {self.name!r} needs at least one component")
        if self.phases < 1:
            raise ConfigError(f"model {self.name!r}: phases must be >= 1")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ConfigError(
                f"model {self.name!r}: write fraction must be in [0, 1]"
            )

    # ------------------------------------------------------------ geometry

    @property
    def weights(self) -> np.ndarray:
        raw = np.array([c.weight for c in self.components], dtype=np.float64)
        return raw / raw.sum()

    def footprint_blocks(self) -> int:
        """Total distinct blocks the model can touch across all phases."""
        total = 0
        for component in self.components:
            span = component.blocks * (self.phases if component.drift else 1)
            total += span
        return total

    def _ring_bases(self) -> list[int]:
        """Disjoint base block numbers for each component's address range."""
        bases: list[int] = []
        cursor = 0
        for component in self.components:
            bases.append(cursor)
            span = component.blocks * (self.phases if component.drift else 1)
            # Pad each ring's range to the next 4K-block boundary so rings
            # start at varied set indices without overlapping.
            cursor += span + (-span % 4096)
        return bases

    # ----------------------------------------------------------- generation

    def generate(
        self,
        n_refs: int,
        seed: int = 0,
        asid: int = 0,
        line_bytes: int = 64,
    ) -> Trace:
        """Generate a trace of ``n_refs`` references.

        The trace is deterministic in ``(n_refs, seed, asid)``. Addresses
        live in the application's private space
        ``[asid * APP_SPACE_BYTES, ...)``.
        """
        if n_refs < 1:
            raise ConfigError(f"n_refs must be >= 1, got {n_refs}")
        rng = np.random.default_rng((seed * 1_000_003 + asid * 97 + 1) & 0x7FFFFFFF)
        line_shift = ilog2(line_bytes)

        blocks = np.empty(n_refs, dtype=np.int64)
        choice = rng.choice(len(self.components), size=n_refs, p=self.weights)
        bases = self._ring_bases()
        phase_of_ref = (
            np.minimum(
                (np.arange(n_refs) * self.phases) // n_refs, self.phases - 1
            )
            if self.phases > 1
            else None
        )

        for index, component in enumerate(self.components):
            positions = np.nonzero(choice == index)[0]
            if positions.size == 0:
                continue
            blocks[positions] = self._component_blocks(
                component, bases[index], positions, phase_of_ref, rng
            )

        app_base_block = (asid * APP_SPACE_BYTES) >> line_shift
        addresses = (blocks + app_base_block) << line_shift
        writes = rng.random(n_refs) < self.write_fraction
        return Trace(addresses, asid, writes)

    def _component_blocks(
        self,
        component: RingComponent,
        base: int,
        positions: np.ndarray,
        phase_of_ref: np.ndarray | None,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Block numbers for this component's references (vectorised runs)."""
        m = positions.size
        if component.run_length == 1:
            in_ring = rng.integers(0, component.blocks, size=m, dtype=np.int64)
        else:
            restart = rng.random(m) < (1.0 / component.run_length)
            restart[0] = True
            group_id = np.cumsum(restart) - 1
            starts = rng.integers(
                0, component.blocks, size=int(group_id[-1]) + 1, dtype=np.int64
            )
            indices = np.arange(m, dtype=np.int64)
            last_restart = np.maximum.accumulate(np.where(restart, indices, 0))
            within = indices - last_restart
            in_ring = (starts[group_id] + within) % component.blocks

        if component.drift and phase_of_ref is not None:
            phase = phase_of_ref[positions]
            return base + phase * component.blocks + in_ring
        return base + in_ring

    # ------------------------------------------------------------- analysis

    def expected_miss_rate(self, cache_blocks: int) -> float:
        """Rough analytic miss rate on a ``cache_blocks``-block LRU cache.

        Greedy model: rings are cached hottest-per-block first; a ring
        granted ``g`` of its ``S`` blocks hits on a ``g/S`` fraction of its
        references. Used for sanity tests and documentation — the
        simulators measure the real thing.
        """
        if cache_blocks < 0:
            raise ConfigError("cache_blocks must be non-negative")
        weights = self.weights
        order = sorted(
            range(len(self.components)),
            key=lambda i: weights[i] / self.components[i].blocks,
            reverse=True,
        )
        remaining = cache_blocks
        miss = 0.0
        for index in order:
            ring = self.components[index]
            granted = min(ring.blocks, remaining)
            remaining -= granted
            miss += weights[index] * (1.0 - granted / ring.blocks)
        # weight normalisation can leave ~1e-16 excess; clamp to [0, 1]
        return min(1.0, max(0.0, miss))

    def scaled(self, factor: float, name: str | None = None) -> "BenchmarkModel":
        """A copy with every ring size scaled by ``factor`` (>= keeps >=1)."""
        if factor <= 0:
            raise ConfigError(f"scale factor must be positive, got {factor}")
        components = tuple(
            RingComponent(
                weight=c.weight,
                blocks=max(1, int(round(c.blocks * factor))),
                run_length=c.run_length,
                drift=c.drift,
            )
            for c in self.components
        )
        return BenchmarkModel(
            name=name or self.name,
            components=components,
            phases=self.phases,
            write_fraction=self.write_fraction,
        )
