"""SPEC CPU2000 stand-in models: art, mcf, ammp, parser.

The four benchmarks of the paper's first workload (Table 1, Figure 5) were
chosen by the authors for their sensitivity to L2 size and associativity.
Ring sizes below are calibrated (see ``tests/test_calibration.py``) so that
on a shared 1 MB 4-way L2 the *alone* miss rates and the *interference*
pattern match Table 1 qualitatively:

==========  ===========  ==============  ==========================
benchmark   alone (ours  alone (paper)   behaviour under sharing
            target)
==========  ===========  ==============  ==========================
art         ~0.06        0.064           collapses when squeezed
                                         (0.73 with all four)
mcf         ~0.67        0.668           always capacity-starved
ammp        ~0.01        0.008           tiny hot set, barely moves
parser      ~0.09        0.086           mid set, very sensitive
==========  ===========  ==============  ==========================

All sizes are in 64-byte blocks (16384 blocks = 1 MB).
"""

from __future__ import annotations

from repro.workloads.model import BenchmarkModel, RingComponent

#: A ring far larger than any cache in the study: references to it are
#: effectively compulsory misses, which sets each benchmark's miss-rate
#: floor (no partition size can get below it).
FAR = 1 << 21  # 2M blocks = 128 MB


def _art() -> BenchmarkModel:
    # Streaming over a ~512 KB image working set: fits in 1 MB alone (and
    # even next to one light co-runner), collapses when three co-runners
    # squeeze it — the paper's sharpest interference victim.
    return BenchmarkModel(
        name="art",
        components=(
            RingComponent(weight=0.90, blocks=8_000, run_length=16),
            RingComponent(weight=0.05, blocks=256, run_length=4),
            RingComponent(weight=0.05, blocks=FAR, run_length=2),
        ),
    )


def _mcf() -> BenchmarkModel:
    # Pointer chasing over a ~6.3 MB graph: capacity-starved at every size
    # in the study (its miss rate barely moves under sharing because it
    # never held much cache to begin with); only an ~5 MB partition can
    # bring it near a 10 % goal.
    return BenchmarkModel(
        name="mcf",
        components=(
            RingComponent(weight=0.70, blocks=100_000, run_length=1),
            RingComponent(weight=0.25, blocks=1_200, run_length=2),
            RingComponent(weight=0.05, blocks=FAR, run_length=1),
        ),
    )


def _ammp() -> BenchmarkModel:
    # Small molecular-dynamics hot set (~110 KB): nearly immune to sharing.
    return BenchmarkModel(
        name="ammp",
        components=(
            RingComponent(weight=0.975, blocks=1_800, run_length=8),
            RingComponent(weight=0.015, blocks=2_500, run_length=4),
            RingComponent(weight=0.010, blocks=FAR, run_length=1),
        ),
    )


def _parser() -> BenchmarkModel:
    # Dictionary + two parse-tree tiers (~750 KB total): fits alone, sheds
    # its outer tier next to art (0.086 -> ~0.13 in the paper) and both
    # outer tiers with all four running (-> 0.253).
    return BenchmarkModel(
        name="parser",
        components=(
            RingComponent(weight=0.770, blocks=2_500, run_length=4),
            RingComponent(weight=0.125, blocks=3_500, run_length=2),
            RingComponent(weight=0.050, blocks=6_000, run_length=2),
            RingComponent(weight=0.055, blocks=FAR, run_length=1),
        ),
    )


_FACTORIES = {
    "art": _art,
    "mcf": _mcf,
    "ammp": _ammp,
    "parser": _parser,
}

#: Canonical order used by Table 1 and Figure 5.
SPEC_QUARTET = ("art", "ammp", "parser", "mcf")


def spec_model(name: str) -> BenchmarkModel:
    """Return the model for one of the four SPEC stand-ins."""
    try:
        return _FACTORIES[name]()
    except KeyError:
        raise KeyError(
            f"unknown SPEC model {name!r}; available: {sorted(_FACTORIES)}"
        ) from None
