"""Synthetic workload models (SPEC / NetBench / MediaBench stand-ins).

Real SPEC traces are not available offline, so each benchmark is modelled
as a *ring mixture*: several rings of blocks (working-set tiers) accessed
with configurable probability, sequential-run length (spatial locality) and
optional per-phase drift. DESIGN.md section 3 documents the substitution
and the calibration targets (Table 1 of the paper).
"""

from repro.workloads.fit import model_from_miss_curve, model_from_trace
from repro.workloads.model import BenchmarkModel, RingComponent
from repro.workloads.spec import SPEC_QUARTET, spec_model
from repro.workloads.mixed import MIXED_SUITE, mixed_model
from repro.workloads.registry import (
    WorkloadFamily,
    available_families,
    available_models,
    get_family,
    get_model,
    get_tenant_spec,
)
from repro.workloads.tenants import TENANT_SUITE, TenantWorkloadSpec, tenant_spec

__all__ = [
    "BenchmarkModel",
    "MIXED_SUITE",
    "RingComponent",
    "SPEC_QUARTET",
    "TENANT_SUITE",
    "TenantWorkloadSpec",
    "WorkloadFamily",
    "available_families",
    "available_models",
    "get_family",
    "get_model",
    "get_tenant_spec",
    "mixed_model",
    "model_from_miss_curve",
    "model_from_trace",
    "spec_model",
    "tenant_spec",
]
