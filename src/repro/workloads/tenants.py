"""Multi-tenant cache-service workload family: Zipf keys, churn, bursts.

The ROADMAP's "millions of users" scenario reinterprets the paper's
regions as *tenants* of a shared memory-cache service (Memshare,
arXiv:1610.08129). This module generates the reference streams for that
scenario:

* **key popularity** — within each tenant, keys are ranked and drawn from
  a bounded Zipf distribution (``key_skew``), the canonical model for
  web-cache object popularity;
* **tenant popularity** — traffic across tenants follows a second Zipf
  over a seeded rank permutation (``tenant_skew``), so a few tenants are
  hot and a long tail is cold;
* **churn** — each tenant is a two-state (active/idle) Markov chain over
  epochs: with probability ``churn`` per epoch a tenant departs or
  (re-)arrives, which is what forces an allocation policy to reclaim and
  re-grant capacity;
* **bursts** — with probability ``burst`` an epoch elects one active
  tenant whose traffic is multiplied by ``burst_factor``;
* **diurnal phases** — optional sinusoidal modulation of per-tenant
  traffic across epochs, with tenant-dependent phase offsets, modelling
  time-zone-staggered daily load waves.

Generation is **epoch-decomposable**: :func:`generate_epoch` produces any
single epoch independently (a campaign worker can build just its slice)
and :meth:`TenantWorkloadSpec.generate` is *defined* as the concatenation
of the epochs, so the two paths are byte-identical by construction
(``tests/test_tenant_workload.py`` pins this across process boundaries).
All randomness derives from :class:`repro.common.rng.XorShift64` streams
keyed on ``(seed, purpose, epoch)``, never from global state.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.common.errors import ConfigError
from repro.common.rng import XorShift64
from repro.trace.container import Trace
from repro.workloads.model import APP_SPACE_BYTES

_MASK64 = (1 << 64) - 1

#: Stream labels hashed into the per-purpose RNG seeds.
_STREAM_PERM = 1
_STREAM_INIT = 2
_STREAM_CHURN = 3
_STREAM_BURST = 4
_STREAM_REFS = 5

#: Diurnal modulation amplitude (traffic swings between 1-A and 1+A).
_DIURNAL_AMPLITUDE = 0.75
#: Floor for modulated weights so no active tenant fully vanishes.
_WEIGHT_FLOOR = 0.05


def stream_seed(seed: int, stream: int, epoch: int = 0) -> int:
    """A 64-bit seed for one ``(seed, stream, epoch)`` random stream.

    Chains :class:`XorShift64` generators so every stream is decorrelated
    but fully determined by its key — the property that makes epoch
    generation order-independent and campaign-decomposable.
    """
    rng = XorShift64((seed * 0x9E3779B97F4A7C15 + 1) & _MASK64)
    value = rng.next_u64()
    for part in (stream, epoch):
        rng = XorShift64(value ^ (((part + 1) * 0xD1342543DE82EF95) & _MASK64))
        value = rng.next_u64()
    return value


def _np_rng(seed: int, stream: int, epoch: int = 0) -> np.random.Generator:
    return np.random.default_rng(stream_seed(seed, stream, epoch))


def zipf_cumulative(n: int, skew: float) -> np.ndarray:
    """Cumulative probabilities of a bounded Zipf over ranks ``1..n``."""
    if n < 1:
        raise ConfigError(f"zipf support must be >= 1, got {n}")
    if skew < 0:
        raise ConfigError(f"zipf skew must be >= 0, got {skew}")
    weights = np.arange(1, n + 1, dtype=np.float64) ** -skew
    cumulative = np.cumsum(weights)
    return cumulative / cumulative[-1]


@dataclass(frozen=True, slots=True)
class TenantWorkloadSpec:
    """One multi-tenant cache-service workload.

    Parameters
    ----------
    name:
        Label used by the registry, reports and presets.
    tenants:
        Number of tenants (each is one ASID in the generated trace).
    footprint_blocks:
        Distinct keys (64-byte blocks) per tenant.
    key_skew:
        Zipf exponent of key popularity within a tenant.
    tenant_skew:
        Zipf exponent of traffic share across tenant popularity ranks.
    churn:
        Per-epoch probability that a tenant flips between active and
        idle (arrive/depart/idle cycles). 0 freezes the tenant set.
    idle_fraction:
        Fraction of tenants idle in epoch 0 (churn can wake them later).
    burst:
        Probability that an epoch elects a burst tenant.
    burst_factor:
        Traffic multiplier applied to the burst tenant's weight.
    diurnal_phases:
        Number of full diurnal cycles across the trace (0 disables).
    epochs:
        Number of equal-length epochs a generated trace is split into.
    write_fraction:
        Probability that a reference is a write.
    """

    name: str
    tenants: int
    footprint_blocks: int = 256
    key_skew: float = 0.8
    tenant_skew: float = 0.6
    churn: float = 0.0
    idle_fraction: float = 0.0
    burst: float = 0.0
    burst_factor: float = 8.0
    diurnal_phases: int = 0
    epochs: int = 8
    write_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.tenants < 1:
            raise ConfigError(f"need at least one tenant, got {self.tenants}")
        if self.footprint_blocks < 1:
            raise ConfigError(
                f"tenant footprint must be >= 1 block, got {self.footprint_blocks}"
            )
        if self.key_skew < 0 or self.tenant_skew < 0:
            raise ConfigError("zipf skews must be non-negative")
        for probability, label in (
            (self.churn, "churn"),
            (self.idle_fraction, "idle_fraction"),
            (self.burst, "burst"),
            (self.write_fraction, "write_fraction"),
        ):
            if not 0.0 <= probability <= 1.0:
                raise ConfigError(
                    f"{label} must be a probability, got {probability}"
                )
        if self.burst_factor < 1.0:
            raise ConfigError(
                f"burst_factor must be >= 1, got {self.burst_factor}"
            )
        if self.diurnal_phases < 0:
            raise ConfigError("diurnal_phases must be >= 0")
        if self.epochs < 1:
            raise ConfigError("epochs must be >= 1")

    # ---------------------------------------------------------- schedule

    def tenant_ranks(self, seed: int) -> np.ndarray:
        """Popularity rank (0 = hottest) of each tenant id."""
        permutation = _np_rng(seed, _STREAM_PERM).permutation(self.tenants)
        ranks = np.empty(self.tenants, dtype=np.int64)
        ranks[permutation] = np.arange(self.tenants)
        return ranks

    def base_weights(self, seed: int) -> np.ndarray:
        """Unnormalised Zipf traffic weights per tenant id."""
        ranks = self.tenant_ranks(seed)
        return (ranks + 1.0) ** -self.tenant_skew

    def activity(self, seed: int, epoch: int) -> np.ndarray:
        """Boolean active mask for one epoch.

        The Markov chain is replayed from epoch 0 using only the
        per-epoch churn streams, so any epoch's mask is computable
        without generating the preceding epochs' traffic.
        """
        if not 0 <= epoch < self.epochs:
            raise ConfigError(
                f"epoch must be in [0, {self.epochs}), got {epoch}"
            )
        active = _np_rng(seed, _STREAM_INIT).random(self.tenants) >= self.idle_fraction
        if self.churn > 0.0:
            for step in range(1, epoch + 1):
                flips = _np_rng(seed, _STREAM_CHURN, step).random(self.tenants)
                active ^= flips < self.churn
        if not active.any():
            # An all-idle epoch would starve the service of traffic;
            # keep the hottest-ranked tenant awake.
            active[int(np.argmin(self.tenant_ranks(seed)))] = True
        return active

    def epoch_weights(self, seed: int, epoch: int) -> np.ndarray:
        """Per-tenant traffic weights for one epoch (0 for idle tenants)."""
        weights = self.base_weights(seed).copy()
        if self.diurnal_phases > 0:
            ranks = self.tenant_ranks(seed)
            phase = (
                self.diurnal_phases * epoch / self.epochs
                + ranks / self.tenants
            )
            modulation = 1.0 + _DIURNAL_AMPLITUDE * np.cos(2.0 * np.pi * phase)
            weights *= np.maximum(modulation, _WEIGHT_FLOOR)
        active = self.activity(seed, epoch)
        weights *= active
        if self.burst > 0.0:
            rng = _np_rng(seed, _STREAM_BURST, epoch)
            if rng.random() < self.burst:
                candidates = np.flatnonzero(active)
                chosen = candidates[rng.integers(0, candidates.size)]
                weights[chosen] *= self.burst_factor
        return weights

    # -------------------------------------------------------- generation

    def epoch_bounds(self, n_refs: int) -> list[tuple[int, int]]:
        """``[start, end)`` reference ranges of each epoch."""
        if n_refs < 1:
            raise ConfigError(f"n_refs must be >= 1, got {n_refs}")
        base, excess = divmod(n_refs, self.epochs)
        bounds: list[tuple[int, int]] = []
        cursor = 0
        for epoch in range(self.epochs):
            length = base + (1 if epoch < excess else 0)
            bounds.append((cursor, cursor + length))
            cursor += length
        return bounds

    def generate_epoch(
        self, n_refs: int, seed: int, epoch: int, line_bytes: int = 64
    ) -> Trace:
        """Generate one epoch's slice of the trace, independently.

        ``n_refs`` is the *whole-trace* reference count — the epoch's own
        length comes from :meth:`epoch_bounds`, so a worker holding only
        ``(spec, n_refs, seed, epoch)`` reproduces exactly the slice the
        in-process :meth:`generate` would have produced.
        """
        start, end = self.epoch_bounds(n_refs)[epoch]
        length = end - start
        if length == 0:
            return Trace(np.empty(0, dtype=np.int64))
        rng = _np_rng(seed, _STREAM_REFS, epoch)
        weights = self.epoch_weights(seed, epoch)
        total = weights.sum()
        if total <= 0.0:  # pragma: no cover - activity() forbids this
            raise ConfigError("epoch has no active tenant traffic")
        tenants = rng.choice(
            self.tenants, size=length, p=weights / total
        ).astype(np.int32)
        key_cumulative = zipf_cumulative(self.footprint_blocks, self.key_skew)
        keys = np.searchsorted(
            key_cumulative, rng.random(length), side="right"
        ).astype(np.int64)
        line_shift = int(line_bytes).bit_length() - 1
        bases = (tenants.astype(np.int64) * APP_SPACE_BYTES) >> line_shift
        addresses = (bases + keys) << line_shift
        writes = rng.random(length) < self.write_fraction
        return Trace(addresses, tenants, writes)

    def generate(self, n_refs: int, seed: int = 0, line_bytes: int = 64) -> Trace:
        """Generate the full trace — the concatenation of all epochs."""
        return Trace.concatenate(
            self.generate_epoch(n_refs, seed, epoch, line_bytes=line_bytes)
            for epoch in range(self.epochs)
        )

    # ---------------------------------------------------------- geometry

    def footprint_total_blocks(self) -> int:
        """Aggregate distinct blocks across every tenant."""
        return self.tenants * self.footprint_blocks

    def scaled_tenants(self, tenants: int, name: str | None = None) -> "TenantWorkloadSpec":
        """A copy of this spec with a different tenant count."""
        return replace(self, tenants=tenants, name=name or self.name)


# ------------------------------------------------------------------ presets

def _presets() -> dict[str, TenantWorkloadSpec]:
    return {
        "tenants10": TenantWorkloadSpec(
            name="tenants10", tenants=10, footprint_blocks=512,
            key_skew=0.9, tenant_skew=0.6,
        ),
        "tenants100": TenantWorkloadSpec(
            name="tenants100", tenants=100, footprint_blocks=256,
            key_skew=0.8, tenant_skew=0.8, churn=0.1, idle_fraction=0.2,
        ),
        "tenants-churn": TenantWorkloadSpec(
            name="tenants-churn", tenants=100, footprint_blocks=256,
            key_skew=0.9, tenant_skew=1.0, churn=0.35, idle_fraction=0.3,
            burst=0.5, burst_factor=8.0,
        ),
        "tenants-diurnal": TenantWorkloadSpec(
            name="tenants-diurnal", tenants=64, footprint_blocks=256,
            key_skew=0.8, tenant_skew=0.8, diurnal_phases=2, epochs=16,
        ),
    }


#: Canonical preset order for listings and tests.
TENANT_SUITE = tuple(_presets())


def tenant_spec(name: str) -> TenantWorkloadSpec:
    """Return one of the bundled tenant workload presets."""
    presets = _presets()
    try:
        return presets[name]
    except KeyError:
        raise KeyError(
            f"unknown tenant workload {name!r}; available: {sorted(presets)}"
        ) from None
