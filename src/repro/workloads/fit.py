"""Fit a ring-mixture model to a measured miss curve.

Closes the calibration loop: given a trace (or any measured LRU
miss-rate-vs-capacity curve), construct a :class:`BenchmarkModel` whose
capacity behaviour approximates it. This is how the bundled SPEC stand-ins
were derived from the paper's Table 1, and it lets users turn their own
traces into compact, regenerable synthetic models.

The construction is direct: a ring of size ``S`` accessed uniformly
contributes its weight to the miss rate while the cache is smaller than
``S`` and nothing once it fits, so a piecewise-constant miss curve with
steps at capacities ``c_1 < c_2 < ...`` maps to rings of those sizes whose
weights are the step heights, plus a huge "far" ring carrying the
capacity-insensitive floor.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.common.errors import ConfigError
from repro.trace.container import Trace
from repro.workloads.model import BenchmarkModel, RingComponent

#: Ring standing in for compulsory / capacity-insensitive misses.
FAR_BLOCKS = 1 << 21
#: Weights below this are noise, not a ring.
MIN_WEIGHT = 1e-3


def model_from_miss_curve(
    curve: Mapping[int, float],
    name: str = "fitted",
    run_length: int = 1,
    write_fraction: float = 0.25,
) -> BenchmarkModel:
    """Build a ring mixture whose LRU miss curve approximates ``curve``.

    ``curve`` maps capacity (in blocks) to miss rate; it must be
    non-increasing in capacity. The fit is exact at the given capacities
    (up to ring-size granularity) for an ideal fully-associative LRU.
    """
    if not curve:
        raise ConfigError("need at least one miss-curve point")
    capacities = sorted(curve)
    rates = [curve[c] for c in capacities]
    if any(not 0.0 <= r <= 1.0 for r in rates):
        raise ConfigError("miss rates must be in [0, 1]")
    for earlier, later in zip(rates, rates[1:]):
        if later > earlier + 1e-9:
            raise ConfigError("a miss curve must be non-increasing in capacity")
    if capacities[0] <= 0:
        raise ConfigError("capacities must be positive")

    components: list[RingComponent] = []
    allocated = 0
    # Hot tier: references that hit even at the smallest capacity.
    hit_floor = 1.0 - rates[0]
    if hit_floor > MIN_WEIGHT:
        components.append(
            RingComponent(
                weight=hit_floor,
                blocks=max(1, capacities[0]),
                run_length=run_length,
            )
        )
        allocated = capacities[0]
    # One ring per step of the curve. Rings nest: for everything up to
    # capacity c_i to fit at c_i, ring i takes the capacity *increment*
    # beyond what the inner tiers already occupy.
    for index in range(1, len(capacities)):
        step = rates[index - 1] - rates[index]
        if step > MIN_WEIGHT:
            blocks = max(1, capacities[index] - allocated)
            components.append(
                RingComponent(
                    weight=step, blocks=blocks, run_length=run_length
                )
            )
            allocated = capacities[index]
    # Floor: misses no capacity removes.
    floor = rates[-1]
    if floor > MIN_WEIGHT or not components:
        components.append(
            RingComponent(weight=max(floor, MIN_WEIGHT), blocks=FAR_BLOCKS)
        )
    return BenchmarkModel(
        name=name,
        components=tuple(components),
        write_fraction=write_fraction,
    )


def model_from_trace(
    trace: Trace,
    capacities: tuple[int, ...] = (1024, 4096, 16384, 65536),
    name: str = "fitted",
    line_bytes: int = 64,
    max_refs: int = 200_000,
) -> BenchmarkModel:
    """Fit a model directly from a trace.

    Measures the trace's LRU miss curve (Mattson, sampled to ``max_refs``
    references), estimates its sequential-run length, and builds the ring
    mixture.
    """
    from repro.trace.analyze import profile_trace

    profile = profile_trace(
        trace,
        line_bytes=line_bytes,
        curve_capacities=capacities,
        max_curve_refs=max_refs,
    )
    run_length = max(1, round(profile.mean_run_length))
    return model_from_miss_curve(
        profile.miss_curve,
        name=name,
        run_length=run_length,
        write_fraction=profile.write_fraction,
    )
