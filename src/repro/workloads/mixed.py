"""The mixed 12-benchmark workload (SPEC + NetBench + MediaBench stand-ins).

Used by Table 2, Figure 6, Table 4 (average molecular power) and Table 5.
The paper lists crafty, gcc, gzip, parser, twolf (SPEC), CRC, DRR, NAT
(NetBench), CJPEG, decode, epic (MediaBench) and gap (SPEC, present in
Figure 6). The miss-rate goal for the mixed study is 25 %.

Models follow the domain intuition the paper leans on: network benchmarks
have tiny hot state plus packet streams; media benchmarks stream frames
with high spatial locality; SPEC integer codes have layered working sets.
Sizes in 64-byte blocks.
"""

from __future__ import annotations

from repro.workloads.model import BenchmarkModel, RingComponent
from repro.workloads.spec import FAR


def _m(name: str, *rings: RingComponent, phases: int = 1) -> BenchmarkModel:
    return BenchmarkModel(name=name, components=rings, phases=phases)


def _build_suite() -> dict[str, BenchmarkModel]:
    return {
        # --- SPEC integer -------------------------------------------------
        "crafty": _m(
            "crafty",
            RingComponent(0.75, 2_500, run_length=4),
            RingComponent(0.21, 5_000, run_length=2),
            RingComponent(0.04, FAR),
        ),
        "gap": _m(
            "gap",
            RingComponent(0.78, 3_000, run_length=4),
            RingComponent(0.17, 20_000, run_length=1),
            RingComponent(0.05, FAR),
        ),
        "gcc": _m(
            "gcc",
            RingComponent(0.58, 4_000, run_length=4),
            RingComponent(0.38, 12_000, run_length=2),
            RingComponent(0.04, FAR),
        ),
        "gzip": _m(
            "gzip",
            RingComponent(0.42, 1_500, run_length=8),
            RingComponent(0.55, 14_000, run_length=32),
            RingComponent(0.03, FAR),
        ),
        "parser": _m(
            "parser",
            RingComponent(0.68, 3_000, run_length=4),
            RingComponent(0.28, 8_500, run_length=2),
            RingComponent(0.04, FAR),
        ),
        "twolf": _m(
            "twolf",
            RingComponent(0.82, 6_000, run_length=2),
            RingComponent(0.14, 10_000, run_length=1),
            RingComponent(0.04, FAR),
        ),
        # --- NetBench -----------------------------------------------------
        "CRC": _m(
            "CRC",
            RingComponent(0.88, 300, run_length=16),
            RingComponent(0.12, 50_000, run_length=64),
        ),
        "DRR": _m(
            "DRR",
            RingComponent(0.84, 800, run_length=8),
            RingComponent(0.13, 8_000, run_length=2),
            RingComponent(0.03, FAR),
        ),
        "NAT": _m(
            "NAT",
            RingComponent(0.90, 400, run_length=8),
            RingComponent(0.07, 30_000, run_length=1),
            RingComponent(0.03, FAR),
        ),
        # --- MediaBench ---------------------------------------------------
        "CJPEG": _m(
            "CJPEG",
            RingComponent(0.47, 1_200, run_length=8),
            RingComponent(0.50, 12_000, run_length=32),
            RingComponent(0.03, FAR),
        ),
        "decode": _m(
            "decode",
            RingComponent(0.42, 900, run_length=8),
            RingComponent(0.55, 10_000, run_length=32),
            RingComponent(0.03, FAR),
        ),
        "epic": _m(
            "epic",
            RingComponent(0.37, 700, run_length=4),
            RingComponent(0.60, 8_000, run_length=16),
            RingComponent(0.03, FAR),
        ),
    }


#: Figure 6's x-axis order; also defines the three tile-cluster groups of
#: Table 2 (consecutive chunks of four, "without giving consideration to
#: the nature of the mix" as the paper puts it).
MIXED_SUITE = (
    "crafty",
    "CRC",
    "DRR",
    "epic",
    "decode",
    "gap",
    "gcc",
    "gzip",
    "CJPEG",
    "NAT",
    "parser",
    "twolf",
)

#: The miss-rate goal used throughout the mixed-workload experiments.
MIXED_GOAL = 0.25


def mixed_model(name: str) -> BenchmarkModel:
    """Return one of the twelve mixed-suite models."""
    suite = _build_suite()
    try:
        return suite[name]
    except KeyError:
        raise KeyError(
            f"unknown mixed-suite model {name!r}; available: {sorted(suite)}"
        ) from None


def mixed_groups(group_size: int = 4) -> list[tuple[str, ...]]:
    """Split the suite into tile-cluster groups of ``group_size``."""
    return [
        tuple(MIXED_SUITE[i : i + group_size])
        for i in range(0, len(MIXED_SUITE), group_size)
    ]
