"""The paper's evaluation metrics.

*Average deviation from the miss-rate goal* is the paper's primary QoS
metric (Figure 5, Table 2). We default to the **absolute** deviation
``|miss_rate - goal|``: Algorithm 1 deliberately withdraws capacity from
applications running *below* goal, i.e. it converges partitions *to* the
goal, and only the absolute form rewards that (DESIGN.md section 4). The
positive-only variant (``EXCESS_ONLY``) is available for sensitivity
studies.

*HPM (hits per molecule)* is the paper's replacement-policy efficiency
metric (Figure 6): an application's hit rate divided by the time-averaged
number of molecules allocated to it — "the replacement scheme that
achieves a lower miss rate with a lesser number of molecules is more
effective".
"""

from __future__ import annotations

import enum
from collections.abc import Mapping

from repro.common.errors import ConfigError


class DeviationMode(enum.Enum):
    """How a miss rate's distance from its goal is scored."""

    ABSOLUTE = "absolute"
    EXCESS_ONLY = "excess_only"

    def score(self, miss_rate: float, goal: float) -> float:
        if self is DeviationMode.ABSOLUTE:
            return abs(miss_rate - goal)
        return max(0.0, miss_rate - goal)


def deviations(
    miss_rates: Mapping[int, float],
    goals: Mapping[int, float | None],
    mode: DeviationMode = DeviationMode.ABSOLUTE,
) -> dict[int, float]:
    """Per-application deviation; unmanaged applications (goal None) are
    excluded from the result."""
    result: dict[int, float] = {}
    for asid, goal in goals.items():
        if goal is None:
            continue
        if asid not in miss_rates:
            raise ConfigError(f"no miss rate recorded for asid {asid}")
        if not 0.0 <= goal <= 1.0:
            raise ConfigError(f"goal for asid {asid} must be in [0, 1], got {goal}")
        result[asid] = mode.score(miss_rates[asid], goal)
    return result


def average_deviation(
    miss_rates: Mapping[int, float],
    goals: Mapping[int, float | None],
    mode: DeviationMode = DeviationMode.ABSOLUTE,
) -> float:
    """Mean deviation over the managed applications (the paper's metric)."""
    per_app = deviations(miss_rates, goals, mode)
    if not per_app:
        raise ConfigError("no managed applications (every goal is None)")
    return sum(per_app.values()) / len(per_app)


def hits_per_molecule(hit_rate: float, mean_molecules: float) -> float:
    """HPM: hit rate per time-averaged molecule (paper Figure 6)."""
    if not 0.0 <= hit_rate <= 1.0:
        raise ConfigError(f"hit rate must be in [0, 1], got {hit_rate}")
    if mean_molecules < 0:
        raise ConfigError("mean molecule count cannot be negative")
    if mean_molecules == 0:
        return 0.0
    return hit_rate / mean_molecules
