"""Evaluation metrics: deviation from miss-rate goals, HPM, summaries."""

from repro.analysis.metrics import (
    DeviationMode,
    average_deviation,
    deviations,
    hits_per_molecule,
)

__all__ = [
    "DeviationMode",
    "average_deviation",
    "deviations",
    "hits_per_molecule",
]
