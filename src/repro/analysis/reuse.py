"""Reuse-distance (LRU stack distance) analysis — Mattson's algorithm.

For an access stream, the *stack distance* of a reference is the number of
distinct blocks touched since the previous reference to the same block.
A fully-associative LRU cache of capacity ``C`` hits exactly the
references with stack distance < ``C`` (Mattson et al., 1970), so one pass
over a trace yields the *entire* miss-rate-vs-capacity curve.

This is the substrate behind workload calibration (the ring-mixture
models' capacity behaviour can be validated against their measured stack
distance histograms) and a generally useful cache-analysis tool.

The implementation keeps the LRU stack implicitly: each block's last
access time is stored, and a Fenwick (binary indexed) tree over access
times counts how many *distinct* blocks were touched more recently —
O(log n) per reference.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.common.errors import ConfigError

#: Histogram bucket recording cold (first-touch) references.
COLD = -1


class _Fenwick:
    """Fenwick tree over access-time slots (1-based internally)."""

    def __init__(self, size: int) -> None:
        self._tree = [0] * (size + 1)
        self.size = size

    def add(self, index: int, delta: int) -> None:
        index += 1
        while index <= self.size:
            self._tree[index] += delta
            index += index & (-index)

    def prefix_sum(self, index: int) -> int:
        """Sum of slots [0, index]."""
        index += 1
        total = 0
        while index > 0:
            total += self._tree[index]
            index -= index & (-index)
        return total

    def total(self) -> int:
        return self.prefix_sum(self.size - 1)


class StackDistanceAnalyzer:
    """One-pass Mattson stack-distance histogram builder."""

    def __init__(self, capacity_hint: int = 1 << 20) -> None:
        if capacity_hint < 1:
            raise ConfigError("capacity_hint must be positive")
        self._tree = _Fenwick(capacity_hint)
        self._last_time: dict[int, int] = {}
        self._clock = 0
        self.histogram: dict[int, int] = {}

    def record(self, block: int) -> int:
        """Process one reference; returns its stack distance (COLD if new)."""
        if self._clock >= self._tree.size:
            self._grow()
        previous = self._last_time.get(block)
        if previous is None:
            distance = COLD
        else:
            # distinct blocks touched strictly after `previous`
            distance = self._tree.total() - self._tree.prefix_sum(previous)
            self._tree.add(previous, -1)
        self._tree.add(self._clock, 1)
        self._last_time[block] = self._clock
        self._clock += 1
        self.histogram[distance] = self.histogram.get(distance, 0) + 1
        return distance

    def _grow(self) -> None:
        old = self._tree
        grown = _Fenwick(old.size * 2)
        for block, time in self._last_time.items():
            grown.add(time, 1)
        self._tree = grown

    def run(self, blocks: Iterable[int]) -> "StackDistanceAnalyzer":
        for block in blocks:
            self.record(block)
        return self

    # ------------------------------------------------------------- queries

    @property
    def references(self) -> int:
        return self._clock

    @property
    def distinct_blocks(self) -> int:
        return len(self._last_time)

    def miss_curve(self, capacities: Iterable[int]) -> dict[int, float]:
        """Miss rate of a fully-associative LRU cache at each capacity.

        A reference hits iff its stack distance is < capacity; cold
        references always miss.
        """
        if self._clock == 0:
            raise ConfigError("no references recorded")
        distances = sorted(d for d in self.histogram if d != COLD)
        counts = np.array([self.histogram[d] for d in distances], dtype=np.int64)
        cumulative = np.cumsum(counts)
        curve: dict[int, float] = {}
        for capacity in capacities:
            if capacity < 0:
                raise ConfigError("capacities must be non-negative")
            index = np.searchsorted(distances, capacity, side="left") - 1
            hits = int(cumulative[index]) if index >= 0 else 0
            curve[capacity] = 1.0 - hits / self._clock
        return curve

    def mean_distance(self) -> float:
        """Mean finite stack distance (cold references excluded)."""
        total = 0
        count = 0
        for distance, n in self.histogram.items():
            if distance == COLD:
                continue
            total += distance * n
            count += n
        return total / count if count else 0.0

    def cold_fraction(self) -> float:
        if self._clock == 0:
            return 0.0
        return self.histogram.get(COLD, 0) / self._clock


def miss_curve(blocks: Iterable[int], capacities: Iterable[int]) -> dict[int, float]:
    """One-shot convenience wrapper: LRU miss rates at the given capacities."""
    analyzer = StackDistanceAnalyzer()
    analyzer.run(blocks)
    return analyzer.miss_curve(capacities)
