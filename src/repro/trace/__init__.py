"""Memory-reference traces: container, Dinero-format IO, interleaving, L1 filter.

This package replaces the paper's SESC + trace-file front end. Traces are
columnar (numpy arrays) for speed; the Dinero ``din`` text format is
supported for interoperability with classic tools.
"""

from repro.trace.container import Trace
from repro.trace.dinero import read_dinero, write_dinero
from repro.trace.interleave import interleave_random, interleave_round_robin
from repro.trace.l1filter import L1Filter, filter_through_l1

__all__ = [
    "L1Filter",
    "Trace",
    "filter_through_l1",
    "interleave_random",
    "interleave_round_robin",
    "read_dinero",
    "write_dinero",
]
