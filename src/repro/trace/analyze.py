"""Trace characterisation: footprint, locality and mix statistics.

A small analysis toolkit over :class:`~repro.trace.Trace` objects — the
kind of report one runs before deciding cache parameters: footprint,
read/write mix, sequential-run structure (spatial locality), per-ASID
breakdown, and a sampled LRU miss curve via the stack-distance engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.reuse import StackDistanceAnalyzer
from repro.common.errors import ConfigError
from repro.trace.container import Trace


@dataclass(slots=True)
class TraceProfile:
    """Summary statistics of one trace (per-ASID or overall)."""

    references: int
    footprint_blocks: int
    write_fraction: float
    mean_run_length: float
    sequential_fraction: float
    miss_curve: dict[int, float] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "references": self.references,
            "footprint_blocks": self.footprint_blocks,
            "footprint_bytes": self.footprint_blocks * 64,
            "write_fraction": self.write_fraction,
            "mean_run_length": self.mean_run_length,
            "sequential_fraction": self.sequential_fraction,
            "miss_curve": dict(self.miss_curve),
        }


def _run_lengths(blocks: np.ndarray) -> np.ndarray:
    """Lengths of maximal +1-stride runs in the block stream."""
    if len(blocks) == 0:
        return np.empty(0, dtype=np.int64)
    breaks = np.nonzero(np.diff(blocks) != 1)[0]
    starts = np.concatenate(([0], breaks + 1))
    ends = np.concatenate((breaks + 1, [len(blocks)]))
    return ends - starts


def profile_trace(
    trace: Trace,
    line_bytes: int = 64,
    curve_capacities: tuple[int, ...] = (1024, 4096, 16384, 65536),
    max_curve_refs: int = 200_000,
) -> TraceProfile:
    """Characterise a trace (single address stream).

    ``curve_capacities`` are in blocks; the miss curve is computed over at
    most ``max_curve_refs`` references (stack distance is O(log n) per
    reference, but huge traces do not need full passes to characterise).
    """
    if len(trace) == 0:
        raise ConfigError("cannot profile an empty trace")
    blocks = trace.blocks(line_bytes)
    runs = _run_lengths(blocks)
    analyzer = StackDistanceAnalyzer()
    sample = blocks[:max_curve_refs].tolist()
    analyzer.run(sample)
    return TraceProfile(
        references=len(trace),
        footprint_blocks=int(np.unique(blocks).size),
        write_fraction=float(trace.writes.mean()),
        mean_run_length=float(runs.mean()) if runs.size else 0.0,
        sequential_fraction=float((np.diff(blocks) == 1).mean())
        if len(blocks) > 1
        else 0.0,
        miss_curve=analyzer.miss_curve(curve_capacities),
    )


def profile_by_asid(trace: Trace, line_bytes: int = 64, **kwargs) -> dict[int, TraceProfile]:
    """Per-application profiles of a multi-programmed trace."""
    profiles: dict[int, TraceProfile] = {}
    for asid in trace.unique_asids():
        mask = trace.asids == asid
        profiles[asid] = profile_trace(trace[mask], line_bytes, **kwargs)
    return profiles
