"""Columnar trace container.

A :class:`Trace` stores one column per attribute (addresses, ASIDs, write
flags) as numpy arrays. Columnar storage keeps multi-million-reference
traces compact and makes interleaving, slicing and block-number conversion
vectorised operations.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from pathlib import Path

import numpy as np

from repro.common.errors import ConfigError
from repro.common.types import Access, AccessType


class Trace:
    """An ordered sequence of memory references.

    Parameters
    ----------
    addresses:
        Byte addresses (array-like of ints).
    asids:
        Per-reference ASID array, or a scalar broadcast to every reference.
    writes:
        Per-reference write flags, or a scalar. Defaults to all-reads.
    """

    __slots__ = ("addresses", "asids", "writes", "_derived")

    def __init__(self, addresses, asids=0, writes=False) -> None:
        self._derived: dict = {}
        self.addresses = np.asarray(addresses, dtype=np.int64)
        if self.addresses.ndim != 1:
            raise ConfigError("trace addresses must be one-dimensional")
        n = len(self.addresses)
        if np.isscalar(asids):
            self.asids = np.full(n, asids, dtype=np.int32)
        else:
            self.asids = np.asarray(asids, dtype=np.int32)
        if np.isscalar(writes) or isinstance(writes, bool):
            self.writes = np.full(n, bool(writes), dtype=np.bool_)
        else:
            self.writes = np.asarray(writes, dtype=np.bool_)
        if len(self.asids) != n or len(self.writes) != n:
            raise ConfigError(
                f"column lengths differ: {n} addresses, {len(self.asids)} asids, "
                f"{len(self.writes)} writes"
            )

    # ------------------------------------------------------------ basic API

    def __len__(self) -> int:
        return len(self.addresses)

    def __iter__(self) -> Iterator[Access]:
        for address, asid, write in zip(
            self.addresses.tolist(), self.asids.tolist(), self.writes.tolist()
        ):
            yield Access(
                address, asid, AccessType.WRITE if write else AccessType.READ
            )

    def __getitem__(self, key) -> "Trace":
        if isinstance(key, int):
            raise ConfigError("use iteration for single records; slices return Traces")
        return Trace(self.addresses[key], self.asids[key], self.writes[key])

    def __eq__(self, other) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return (
            np.array_equal(self.addresses, other.addresses)
            and np.array_equal(self.asids, other.asids)
            and np.array_equal(self.writes, other.writes)
        )

    def blocks(self, line_bytes: int = 64) -> np.ndarray:
        """Block numbers at the given line size (vectorised, uncached).

        Always equal to ``addresses // line_bytes`` for non-negative
        addresses — the shift amount is parenthesised so it cannot be
        re-associated with the shift by a careless edit (``a >> b - 1``
        only means ``a >> (b - 1)`` by precedence accident).
        """
        if line_bytes <= 0 or line_bytes & (line_bytes - 1):
            raise ConfigError(f"line size must be a power of two, got {line_bytes}")
        return self.addresses >> (int(line_bytes).bit_length() - 1)

    def block_column(self, line_bytes: int = 64) -> np.ndarray:
        """Block-number column, lazily materialised and cached per line size.

        Drivers stream the same trace through many cache configurations;
        the shift is paid once per line size and the column is then fed
        straight to the vector kernels (``access_many``) without any
        per-element conversion. The cache assumes the column arrays are
        not mutated in place — derived views (``with_asid``, slices,
        ``offset``) return fresh ``Trace`` objects and so get fresh
        caches.
        """
        key = ("blocks", line_bytes)
        cached = self._derived.get(key)
        if cached is None:
            cached = self.blocks(line_bytes)
            self._derived[key] = cached
        return cached

    def block_list(self, line_bytes: int = 64) -> list[int]:
        """Block numbers as a plain-int list (converted per call).

        Only the ndarray column (:meth:`block_column`) is cached; scalar
        consumers that want plain ints for a Python loop pay one
        ``.tolist()`` per run instead of keeping a duplicate list copy
        alive for the lifetime of the trace.
        """
        return self.block_column(line_bytes).tolist()

    def asid_list(self) -> list[int]:
        """ASID column as a plain-int list (converted per call)."""
        return self.asids.tolist()

    def write_list(self) -> list[bool]:
        """Write-flag column as a plain-bool list (converted per call)."""
        return self.writes.tolist()

    def unique_asids(self) -> list[int]:
        return sorted(int(a) for a in np.unique(self.asids))

    def footprint_blocks(self, line_bytes: int = 64) -> int:
        """Number of distinct blocks touched."""
        return int(np.unique(self.blocks(line_bytes)).size)

    # --------------------------------------------------------- construction

    @classmethod
    def from_accesses(cls, accesses: Iterable[Access]) -> "Trace":
        records = list(accesses)
        return cls(
            [a.address for a in records],
            [a.asid for a in records],
            [a.is_write for a in records],
        )

    @classmethod
    def concatenate(cls, traces: Iterable["Trace"]) -> "Trace":
        traces = list(traces)
        if not traces:
            return cls(np.empty(0, dtype=np.int64))
        return cls(
            np.concatenate([t.addresses for t in traces]),
            np.concatenate([t.asids for t in traces]),
            np.concatenate([t.writes for t in traces]),
        )

    def with_asid(self, asid: int) -> "Trace":
        """Copy of the trace with every reference relabelled to ``asid``."""
        return Trace(self.addresses.copy(), asid, self.writes.copy())

    def offset(self, base: int) -> "Trace":
        """Copy with ``base`` added to every address (address-space placement).

        Raises :class:`ConfigError` if the shift would overflow the int64
        address column — numpy would otherwise wrap the addresses silently
        and the trace would alias unrelated blocks.
        """
        bounds = np.iinfo(np.int64)
        if not bounds.min <= base <= bounds.max:
            raise ConfigError(
                f"trace offset {base} does not fit in the int64 address column"
            )
        if len(self.addresses):
            low = int(self.addresses.min())
            high = int(self.addresses.max())
            if high + base > bounds.max or low + base < bounds.min:
                raise ConfigError(
                    f"trace offset {base} overflows int64 addresses "
                    f"(range [{low}, {high}])"
                )
        return Trace(self.addresses + np.int64(base), self.asids.copy(), self.writes.copy())

    # ----------------------------------------------------------- persistence

    def save(self, path: str | Path) -> None:
        """Save as a compressed ``.npz`` archive."""
        np.savez_compressed(
            Path(path), addresses=self.addresses, asids=self.asids, writes=self.writes
        )

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        with np.load(Path(path)) as data:
            return cls(data["addresses"], data["asids"], data["writes"])

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"Trace(n={len(self)}, asids={self.unique_asids()[:8]})"
