"""Dinero ``din`` trace-format reader and writer.

The classic Dinero III input format is one reference per line::

    <label> <hex-address>

where label 0 = data read, 1 = data write, 2 = instruction fetch. The paper
feeds L1-D miss traces to "a modified version of Dinero"; this module lets
our traces round-trip through that format (instruction fetches are read in
as reads). ASIDs are not part of the din format, so a single ASID applies
to a whole file — multi-application traces are stored as one file per
application and interleaved afterwards.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.common.errors import ConfigError
from repro.trace.container import Trace

_READ, _WRITE, _IFETCH = 0, 1, 2


def write_dinero(trace: Trace, path: str | Path) -> None:
    """Write a trace in din format (ASIDs are dropped; see module docs)."""
    with open(Path(path), "w", encoding="ascii") as handle:
        for address, write in zip(trace.addresses.tolist(), trace.writes.tolist()):
            handle.write(f"{_WRITE if write else _READ} {address:x}\n")


def read_dinero(path: str | Path, asid: int = 0) -> Trace:
    """Read a din-format file, labelling every reference with ``asid``."""
    addresses: list[int] = []
    writes: list[bool] = []
    with open(Path(path), "r", encoding="ascii") as handle:
        for line_no, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ConfigError(f"{path}:{line_no}: malformed din record {raw!r}")
            try:
                label = int(parts[0])
                address = int(parts[1], 16)
            except ValueError as exc:
                raise ConfigError(f"{path}:{line_no}: malformed din record {raw!r}") from exc
            if label not in (_READ, _WRITE, _IFETCH):
                raise ConfigError(f"{path}:{line_no}: unknown din label {label}")
            addresses.append(address)
            writes.append(label == _WRITE)
    return Trace(np.asarray(addresses, dtype=np.int64), asid, np.asarray(writes, dtype=np.bool_))
