"""Interleaving per-application traces into one shared-cache reference stream.

The paper runs benchmarks "concurrently" on a CMP and observes the shared
L2. Once each application is reduced to its own (post-L1) trace, concurrent
execution at the shared cache is an interleaving of those traces. Two
interleavers are provided:

* :func:`interleave_round_robin` — one quantum of references from each
  application in turn; deterministic and the default for all experiments
  (applications progress at equal rates, like same-IPC cores).
* :func:`interleave_random` — each next reference drawn from a random
  application, optionally weighted (models unequal memory intensity).

Both stop when the shortest source is exhausted by default (so every
application is "running" for the whole interleaved window), or exhaust all
sources with ``drain=True``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.common.errors import ConfigError
from repro.trace.container import Trace


def _check_sources(traces: Sequence[Trace]) -> None:
    if not traces:
        raise ConfigError("need at least one trace to interleave")
    for trace in traces:
        if len(trace) == 0:
            raise ConfigError("cannot interleave an empty trace")


def interleave_round_robin(
    traces: Sequence[Trace], quantum: int = 1, drain: bool = False
) -> Trace:
    """Merge traces by taking ``quantum`` references from each in turn.

    With ``drain=False`` (default) the merge stops after the last full
    round in which every source still had references, keeping the
    application mix stationary. With ``drain=True`` exhausted sources drop
    out and the rest continue.
    """
    _check_sources(traces)
    if quantum < 1:
        raise ConfigError(f"quantum must be >= 1, got {quantum}")

    if not drain:
        rounds = min(len(t) for t in traces) // quantum
        if rounds == 0:
            raise ConfigError(
                f"shortest trace ({min(len(t) for t in traces)} refs) is shorter "
                f"than one quantum ({quantum})"
            )
        pieces = []
        for r in range(rounds):
            lo, hi = r * quantum, (r + 1) * quantum
            for trace in traces:
                pieces.append(trace[lo:hi])
        return Trace.concatenate(pieces)

    cursors = [0] * len(traces)
    pieces = []
    active = set(range(len(traces)))
    while active:
        for index in list(range(len(traces))):
            if index not in active:
                continue
            trace = traces[index]
            lo = cursors[index]
            hi = min(lo + quantum, len(trace))
            pieces.append(trace[lo:hi])
            cursors[index] = hi
            if hi >= len(trace):
                active.discard(index)
    return Trace.concatenate(pieces)


def interleave_random(
    traces: Sequence[Trace],
    weights: Sequence[float] | None = None,
    seed: int = 0,
) -> Trace:
    """Merge traces by drawing each next reference from a random source.

    ``weights`` gives relative reference rates (normalised internally);
    defaults to uniform. The merge stops when any source is exhausted, so
    the produced length is random but the mix is stationary throughout.
    """
    _check_sources(traces)
    k = len(traces)
    if weights is None:
        probabilities = np.full(k, 1.0 / k)
    else:
        if len(weights) != k:
            raise ConfigError(f"{len(weights)} weights for {k} traces")
        weights_arr = np.asarray(weights, dtype=np.float64)
        if np.any(weights_arr <= 0):
            raise ConfigError("interleave weights must be positive")
        probabilities = weights_arr / weights_arr.sum()

    rng = np.random.default_rng(seed)
    # Draw a generous batch of source choices, then cut at the first point
    # where any source would run dry.
    total = sum(len(t) for t in traces)
    choices = rng.choice(k, size=total, p=probabilities)
    cut = total
    for index, trace in enumerate(traces):
        positions = np.nonzero(choices == index)[0]
        if positions.size > len(trace):
            # The reference after this source's last one is where the merge
            # must stop.
            cut = min(cut, int(positions[len(trace)]))
    choices = choices[:cut]

    addresses = np.empty(cut, dtype=np.int64)
    asids = np.empty(cut, dtype=np.int32)
    writes = np.empty(cut, dtype=np.bool_)
    for index, trace in enumerate(traces):
        positions = np.nonzero(choices == index)[0]
        take = positions.size
        addresses[positions] = trace.addresses[:take]
        asids[positions] = trace.asids[:take]
        writes[positions] = trace.writes[:take]
    return Trace(addresses, asids, writes)
