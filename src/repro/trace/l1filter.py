"""L1 miss filter: reduce a processor-side trace to the stream an L2 sees.

The paper's methodology: "The L1-Data misses were recorded and the traces
were used as input to a modified version of Dinero". :class:`L1Filter`
reproduces that recording step — it runs references through a private L1
model per application and emits only the misses.

The bundled workload models are calibrated *post-L1* (see DESIGN.md), so
the experiment harnesses do not apply this filter; it exists for users who
bring processor-side traces of their own.
"""

from __future__ import annotations

import numpy as np

from repro.caches.setassoc import SetAssociativeCache
from repro.trace.container import Trace


class L1Filter:
    """Per-ASID private L1 caches that pass through only their misses.

    Parameters
    ----------
    size_bytes, associativity, line_bytes, policy:
        Geometry of each private L1 (defaults: 16 KB 4-way 64 B LRU, a
        typical embedded/early-2000s L1-D).
    """

    def __init__(
        self,
        size_bytes: int = 16 * 1024,
        associativity: int = 4,
        line_bytes: int = 64,
        policy: str = "lru",
    ) -> None:
        self._geometry = (size_bytes, associativity, line_bytes, policy)
        self._l1s: dict[int, SetAssociativeCache] = {}
        self.line_bytes = line_bytes

    def _l1_for(self, asid: int) -> SetAssociativeCache:
        l1 = self._l1s.get(asid)
        if l1 is None:
            size, assoc, line, policy = self._geometry
            l1 = SetAssociativeCache(size, assoc, line, policy, name=f"L1-D asid{asid}")
            self._l1s[asid] = l1
        return l1

    def filter(self, trace: Trace) -> Trace:
        """Return the sub-trace of references that miss in their L1."""
        keep = np.zeros(len(trace), dtype=np.bool_)
        blocks = trace.blocks(self.line_bytes).tolist()
        asids = trace.asids.tolist()
        writes = trace.writes.tolist()
        for index, (block, asid, write) in enumerate(zip(blocks, asids, writes)):
            if not self._l1_for(asid).access_block(block, asid, write).hit:
                keep[index] = True
        return trace[keep]

    def miss_rate(self, asid: int | None = None) -> float:
        """Observed L1 miss rate (overall requires a single filter pass)."""
        if asid is not None:
            l1 = self._l1s.get(asid)
            return l1.stats.miss_rate() if l1 is not None else 0.0
        accesses = sum(l1.stats.total.accesses for l1 in self._l1s.values())
        misses = sum(l1.stats.total.misses for l1 in self._l1s.values())
        return misses / accesses if accesses else 0.0


def filter_through_l1(trace: Trace, **l1_kwargs) -> Trace:
    """One-shot convenience wrapper around :class:`L1Filter`."""
    return L1Filter(**l1_kwargs).filter(trace)
