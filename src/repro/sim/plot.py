"""ASCII chart rendering for figure-style results.

The benches save numeric tables; for terminal-friendly *figures* (Figure 5
is a line chart in the paper) this module renders series as an ASCII
chart — no plotting dependency, deterministic output, easy to test.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.common.errors import ConfigError

_MARKERS = "*o+x#@%&"


def ascii_chart(
    x_labels: Sequence[str],
    series: dict[str, Sequence[float]],
    height: int = 12,
    title: str | None = None,
    y_format: str = "{:.2f}",
) -> str:
    """Render series as an ASCII scatter/line chart.

    Each series gets a marker; points that collide show the marker of the
    series listed first. A legend maps markers to series names.
    """
    if not series:
        raise ConfigError("need at least one series")
    if height < 3:
        raise ConfigError("chart height must be >= 3")
    n_points = len(x_labels)
    for name, values in series.items():
        if len(values) != n_points:
            raise ConfigError(
                f"series {name!r} has {len(values)} values for {n_points} x labels"
            )
    if len(series) > len(_MARKERS):
        raise ConfigError(f"at most {len(_MARKERS)} series supported")

    all_values = [v for values in series.values() for v in values]
    lo, hi = min(all_values), max(all_values)
    if hi == lo:
        hi = lo + 1.0

    col_width = max(max(len(str(x)) for x in x_labels) + 2, 6)
    y_width = max(len(y_format.format(v)) for v in (lo, hi)) + 1

    def row_of(value: float) -> int:
        return round((value - lo) / (hi - lo) * (height - 1))

    grid = [[" "] * (n_points * col_width) for _ in range(height)]
    for index, (name, values) in enumerate(series.items()):
        marker = _MARKERS[index]
        for point, value in enumerate(values):
            row = height - 1 - row_of(value)
            col = point * col_width + col_width // 2
            if grid[row][col] == " ":
                grid[row][col] = marker

    lines: list[str] = []
    if title:
        lines.append(title)
    for row in range(height):
        value = hi - (hi - lo) * row / (height - 1)
        label = y_format.format(value).rjust(y_width)
        lines.append(f"{label} |{''.join(grid[row])}")
    lines.append(" " * y_width + " +" + "-" * (n_points * col_width))
    x_axis = " " * (y_width + 2)
    for x in x_labels:
        x_axis += str(x).center(col_width)
    lines.append(x_axis)
    legend = "  ".join(
        f"{_MARKERS[i]}={name}" for i, name in enumerate(series)
    )
    lines.append(" " * (y_width + 2) + legend)
    return "\n".join(lines)
