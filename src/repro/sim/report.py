"""Plain-text table formatting for experiment results.

Every experiment harness produces rows of (label, values...); this module
turns them into the aligned tables the benches print — the same rows the
paper's tables and figures report.
"""

from __future__ import annotations

from collections.abc import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render an aligned monospace table."""
    rendered_rows: list[list[str]] = []
    for row in rows:
        rendered: list[str] = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), sum(widths) + 2 * (len(widths) - 1)))
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
    title: str | None = None,
) -> str:
    """Render figure-style data (one column per series) as a table."""
    headers = [x_label, *series.keys()]
    rows = []
    for index, x in enumerate(x_values):
        rows.append([x, *[values[index] for values in series.values()]])
    return format_table(headers, rows, title=title)
