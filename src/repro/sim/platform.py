"""Full-platform simulation: coherent cores over a shared (molecular) L2.

Composes every substrate in the library into the CMP of the paper's
Figure 2: per-core private L1s kept coherent by a snooping MESI bus
(:mod:`repro.caches.coherence`), a shared second level — molecular or
traditional — and a cycle-based core timing model in which each core's
issue rate is throttled by its *actual* access latencies (L1 hit, L2 hit
with hierarchical-search delay, or memory).

Compared with :class:`repro.sim.cmp.CMPRunner` (which drives post-L1
traces with an abstract penalty), the platform runs processor-side traces
end to end and reports throughput per core — the "application latency and
throughput" consequences the paper's introduction motivates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import heapq

from repro.caches.coherence import SnoopingBus
from repro.common.errors import ConfigError
from repro.molecular.cache import MolecularCache
from repro.telemetry.bus import EventBus, attach_telemetry
from repro.trace.container import Trace


@dataclass(frozen=True, slots=True)
class PlatformConfig:
    """Timing and L1 geometry for the platform."""

    l1_size_bytes: int = 16 * 1024
    l1_associativity: int = 4
    line_bytes: int = 64
    l1_hit_cycles: int = 2
    l2_base_cycles: int = 10  # interconnect to the shared level and back
    memory_cycles: int = 200  # used when the L2 is a traditional cache
    warmup_refs: int = 0

    def __post_init__(self) -> None:
        if self.l1_hit_cycles < 1 or self.l2_base_cycles < 0 or self.memory_cycles < 0:
            raise ConfigError("cycle parameters must be non-negative (L1 >= 1)")


@dataclass(slots=True)
class CoreReport:
    """Per-core outcome of a platform run."""

    core_id: int
    references: int = 0
    l1_hits: int = 0
    cycles: float = 0.0

    @property
    def l1_hit_rate(self) -> float:
        return self.l1_hits / self.references if self.references else 0.0

    @property
    def references_per_kcycle(self) -> float:
        """Throughput: references retired per thousand cycles."""
        if self.cycles == 0:
            return 0.0
        return 1000.0 * self.references / self.cycles


@dataclass(slots=True)
class PlatformResult:
    cores: dict[int, CoreReport] = field(default_factory=dict)
    end_cycle: float = 0.0

    def throughput(self, core: int) -> float:
        return self.cores[core].references_per_kcycle


class CMPPlatform:
    """Cores + coherent L1s + a shared L2, with latency-driven timing."""

    def __init__(
        self,
        cores: int,
        shared_cache,
        config: PlatformConfig | None = None,
        asid_of_core: dict[int, int] | None = None,
        telemetry: EventBus | None = None,
    ) -> None:
        self.config = config or PlatformConfig()
        self.bus = SnoopingBus(
            cores,
            shared_cache,
            l1_size_bytes=self.config.l1_size_bytes,
            l1_associativity=self.config.l1_associativity,
            line_bytes=self.config.line_bytes,
            asid_of_core=asid_of_core,
        )
        self.shared = shared_cache
        self._is_molecular = isinstance(shared_cache, MolecularCache)
        #: Optional event bus recording the shared level; note that the
        #: L1s filter the stream, so recorded references are L1 misses.
        self.telemetry = telemetry
        attach_telemetry(shared_cache, telemetry)

    # ----------------------------------------------------------- internals

    def _access_cycles(self, core: int, block: int, write: bool) -> tuple[bool, float]:
        """Perform one reference; returns (l1_hit, cycles consumed)."""
        if self._is_molecular:
            latency_before = self.shared.stats.latency_cycles
        else:
            misses_before = self.shared.stats.total.misses
        l1_hit = self.bus.access(core, block, write)
        if l1_hit:
            return True, float(self.config.l1_hit_cycles)
        cycles = float(self.config.l1_hit_cycles + self.config.l2_base_cycles)
        if self._is_molecular:
            # The molecular cache accounted the exact access latency
            # (ASID stage, probes, Ulmo search, memory) — charge it.
            cycles += self.shared.stats.latency_cycles - latency_before
        elif self.shared.stats.total.misses > misses_before:
            cycles += self.config.memory_cycles
        return False, cycles

    # ----------------------------------------------------------------- API

    def run(self, traces: dict[int, Trace]) -> PlatformResult:
        """Run one trace per core concurrently until the first exhausts."""
        if not traces:
            raise ConfigError("need at least one core trace")
        for core in traces:
            if core < 0 or core >= len(self.bus.l1s):
                raise ConfigError(f"no core {core} on this platform")
            if len(traces[core]) == 0:
                raise ConfigError(f"trace for core {core} is empty")

        streams = {
            core: (
                trace.blocks(self.config.line_bytes).tolist(),
                trace.writes.tolist(),
            )
            for core, trace in traces.items()
        }
        result = PlatformResult(
            cores={core: CoreReport(core_id=core) for core in streams}
        )
        heap = [(0.0, core, core, 0) for core in sorted(streams)]
        heapq.heapify(heap)
        issued = 0
        warmed = self.config.warmup_refs == 0

        while True:
            now, tiebreak, core, index = heapq.heappop(heap)
            blocks, writes = streams[core]
            l1_hit, cycles = self._access_cycles(core, blocks[index], writes[index])
            issued += 1
            report = result.cores[core]
            report.references += 1
            report.l1_hits += l1_hit
            report.cycles += cycles
            if not warmed and issued >= self.config.warmup_refs:
                warmed = True
                for report in result.cores.values():
                    report.references = 0
                    report.l1_hits = 0
                    report.cycles = 0.0
            index += 1
            if index >= len(blocks):
                result.end_cycle = now + cycles
                break
            heapq.heappush(heap, (now + cycles, tiebreak, core, index))
        if self.telemetry is not None:
            self.telemetry.flush_epoch()
        return result
