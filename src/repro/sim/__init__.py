"""Simulation drivers and the experiment harnesses for every table/figure."""

from repro.sim.cmp import CMPRunConfig, CMPRunner, CMPRunResult
from repro.sim.driver import run_trace
from repro.sim.platform import CMPPlatform, PlatformConfig, PlatformResult

__all__ = [
    "CMPPlatform",
    "CMPRunConfig",
    "CMPRunner",
    "CMPRunResult",
    "PlatformConfig",
    "PlatformResult",
    "run_trace",
]
