"""Table 2 — mixed 12-benchmark workload, deviation from a 25 % goal.

Twelve benchmarks (SPEC + NetBench + MediaBench) in three groups of four;
each group is pinned to one 2 MB tile cluster of a 6 MB molecular cache
(4 x 512 KB tiles per cluster). Baselines: the same twelve benchmarks
sharing traditional 4 MB and 8 MB caches at 4- and 8-way.

The paper's headline: the 6 MB molecular cache with Randy beats even the
8 MB 8-way traditional cache; Random placement is clearly worse.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.metrics import DeviationMode, average_deviation
from repro.molecular.config import MolecularCacheConfig
from repro.sim.experiments.common import (
    MolecularRun,
    build_traces,
    run_molecular_workload,
    run_traditional_workload,
)
from repro.sim.report import format_table
from repro.sim.scale import scaled
from repro.workloads.mixed import MIXED_GOAL, MIXED_SUITE

#: The paper's Table 2, for side-by-side reporting.
PAPER_TABLE2 = {
    "4MB 4way": 0.313261,
    "4MB 8way": 0.309515,
    "8MB 4way": 0.246843,
    "8MB 8way": 0.243161,
    "6MB Molecular Randy": 0.222075,
    "6MB Molecular Random": 0.356923,
}

TRADITIONAL_CONFIGS = (
    ("4MB 4way", 4 << 20, 4),
    ("4MB 8way", 4 << 20, 8),
    ("8MB 4way", 8 << 20, 4),
    ("8MB 8way", 8 << 20, 8),
)


@dataclass(slots=True)
class Table2Result:
    """Average deviation per cache design, plus per-app detail."""

    goal: float
    deviations: dict[str, float] = field(default_factory=dict)
    miss_rates: dict[str, dict[str, float]] = field(default_factory=dict)
    molecular_runs: dict[str, MolecularRun] = field(default_factory=dict)

    def format(self) -> str:
        rows = [
            [label, dev, PAPER_TABLE2.get(label, float("nan"))]
            for label, dev in self.deviations.items()
        ]
        return format_table(
            ["cache type", "avg deviation (ours)", "avg deviation (paper)"],
            rows,
            title=(
                "Table 2 — average deviation from the "
                f"{self.goal:.0%} goal, mixed 12-benchmark workload"
            ),
        )


def molecular_6mb_config(placement: str) -> MolecularCacheConfig:
    """The paper's 6 MB molecular configuration: 3 clusters x 4 x 512 KB."""
    return MolecularCacheConfig(
        molecule_bytes=8 * 1024,
        molecules_per_tile=64,  # 512 KB tiles
        tiles_per_cluster=4,
        clusters=3,
        placement=placement,
    )


def run_table2(
    refs_per_app: int = 300_000,
    seed: int = 1,
    deviation_mode: DeviationMode = DeviationMode.ABSOLUTE,
    include_traditional: bool = True,
    placements: tuple[str, ...] = ("randy", "random"),
) -> Table2Result:
    """Reproduce Table 2 (and collect the molecular runs Figure 6 reuses)."""
    refs = scaled(refs_per_app)
    names = list(MIXED_SUITE)
    goals: dict[int, float | None] = {asid: MIXED_GOAL for asid in range(len(names))}
    traces = build_traces(names, refs, seed)
    result = Table2Result(goal=MIXED_GOAL)

    if include_traditional:
        for label, size_bytes, assoc in TRADITIONAL_CONFIGS:
            run = run_traditional_workload(traces, size_bytes, assoc)
            rates = run.miss_rates()
            result.deviations[label] = average_deviation(rates, goals, deviation_mode)
            result.miss_rates[label] = {names[a]: r for a, r in rates.items()}

    # Three groups of four, assigned to clusters "without giving
    # consideration to the nature of the mix" — i.e. in suite order. Each
    # application gets its own tile within its group's cluster.
    tile_assignment = {asid: asid for asid in range(len(names))}
    for placement in placements:
        label = f"6MB Molecular {placement.capitalize()}"
        run = run_molecular_workload(
            traces,
            molecular_6mb_config(placement),
            goals,
            placement=placement,
            tile_assignment=tile_assignment,
        )
        result.deviations[label] = average_deviation(
            run.miss_rates, goals, deviation_mode
        )
        result.miss_rates[label] = {names[a]: r for a, r in run.miss_rates.items()}
        result.molecular_runs[placement] = run
    return result
