"""Shared plumbing for the experiment harnesses.

Centralises the pieces every table/figure needs: trace construction from
benchmark names, a traditional shared-cache run, and a molecular run with
per-application regions — all through the throttled CMP execution model
(see :mod:`repro.sim.cmp` for why throttling matters).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.caches.setassoc import SetAssociativeCache
from repro.common.errors import ConfigError
from repro.faults.spec import FaultPlan
from repro.molecular.cache import MolecularCache
from repro.molecular.config import MolecularCacheConfig, ResizePolicy
from repro.sim.cmp import CMPRunConfig, CMPRunner, CMPRunResult
from repro.telemetry.bus import EventBus
from repro.trace.container import Trace
from repro.workloads.registry import get_model

#: Default stall, in inter-reference units, that a shared-cache miss
#: inflicts on its core (calibrated alongside the workload models).
DEFAULT_MISS_PENALTY = 10.0
#: Fraction of the total references treated as warm-up.
WARMUP_FRACTION = 0.25


def warmup_for(refs_per_app: int, apps: int) -> int:
    """Warm-up reference count for a run of ``apps`` x ``refs_per_app``."""
    return int(refs_per_app * apps * WARMUP_FRACTION / max(apps, 1))


def build_traces(
    names: list[str] | tuple[str, ...],
    refs_per_app: int,
    seed: int = 1,
) -> dict[int, Trace]:
    """Generate one trace per benchmark, ASIDs assigned by position."""
    if not names:
        raise ConfigError("need at least one benchmark name")
    return {
        asid: get_model(name).generate(refs_per_app, seed=seed, asid=asid)
        for asid, name in enumerate(names)
    }


@dataclass(slots=True)
class MolecularRun:
    """Everything a bench needs from one molecular-cache run."""

    result: CMPRunResult
    cache: MolecularCache
    miss_rates: dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.miss_rates:
            self.miss_rates = self.result.miss_rates()


def run_traditional_workload(
    traces: dict[int, Trace],
    size_bytes: int,
    associativity: int,
    policy: str = "lru",
    miss_penalty: float = DEFAULT_MISS_PENALTY,
    warmup_refs: int | None = None,
) -> CMPRunResult:
    """Run the workload on a shared traditional cache."""
    cache = SetAssociativeCache(size_bytes, associativity, policy=policy)
    if warmup_refs is None:
        refs = min(len(t) for t in traces.values())
        warmup_refs = warmup_for(refs, len(traces))
    runner = CMPRunner(cache, CMPRunConfig(miss_penalty, warmup_refs))
    return runner.run(traces)


def run_molecular_workload(
    traces: dict[int, Trace],
    config: MolecularCacheConfig,
    goals: dict[int, float | None],
    placement: str = "randy",
    resize_policy: ResizePolicy | None = None,
    tile_assignment: dict[int, int] | None = None,
    line_multipliers: dict[int, int] | None = None,
    miss_penalty: float = DEFAULT_MISS_PENALTY,
    warmup_refs: int | None = None,
    telemetry: EventBus | None = None,
    faults: FaultPlan | None = None,
) -> MolecularRun:
    """Run the workload on a molecular cache, one region per application.

    ``tile_assignment`` maps ASID to home tile; defaults to one tile per
    application in ASID order (the paper's static processor-tile mapping).
    ``telemetry`` records the run through an event bus (see
    :mod:`repro.telemetry`); the caller closes the bus. ``faults``
    schedules a fault plan against the run (``at`` counts globally issued
    references of the interleaved stream).
    """
    cache = MolecularCache(
        config, resize_policy=resize_policy or ResizePolicy(), placement=placement
    )
    for asid in sorted(traces):
        tile_id = None if tile_assignment is None else tile_assignment[asid]
        multiplier = 1 if line_multipliers is None else line_multipliers.get(asid, 1)
        cache.assign_application(
            asid,
            goal=goals.get(asid),
            tile_id=tile_id,
            line_multiplier=multiplier,
        )
    if warmup_refs is None:
        refs = min(len(t) for t in traces.values())
        warmup_refs = warmup_for(refs, len(traces))
    runner = CMPRunner(
        cache,
        CMPRunConfig(miss_penalty, warmup_refs, faults=faults),
        telemetry=telemetry,
    )
    result = runner.run(traces)
    return MolecularRun(result=result, cache=cache)
