"""Table 1 — inter-application interference on a shared 1 MB 4-way L2.

The paper's motivating experiment: art, ammp, parser and mcf run alone, in
every pair, and all four together; the observed per-benchmark miss rate
depends strongly on the co-runners, demonstrating cache pollution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from repro.sim.experiments.common import build_traces, run_traditional_workload
from repro.sim.report import format_table
from repro.sim.scale import scaled

#: The paper's benchmark order for this table.
QUARTET = ("art", "mcf", "ammp", "parser")

#: The paper's Table 1 values, for side-by-side comparison in reports:
#: combo (tuple of names) -> {name: miss rate}.
PAPER_TABLE1 = {
    ("art",): {"art": 0.064},
    ("mcf",): {"mcf": 0.668},
    ("ammp",): {"ammp": 0.008},
    ("parser",): {"parser": 0.086},
    ("art", "mcf"): {"art": 0.069, "mcf": 0.691},
    ("art", "ammp"): {"art": 0.065, "ammp": 0.009},
    ("art", "parser"): {"art": 0.065, "parser": 0.134},
    ("mcf", "ammp"): {"mcf": 0.702, "ammp": 0.012},
    ("mcf", "parser"): {"mcf": 0.684, "parser": 0.247},
    ("ammp", "parser"): {"ammp": 0.009, "parser": 0.091},
    ("art", "mcf", "ammp", "parser"): {
        "art": 0.734,
        "mcf": 0.688,
        "ammp": 0.013,
        "parser": 0.253,
    },
}


@dataclass(slots=True)
class Table1Result:
    """Measured miss rates per benchmark combination."""

    cache_label: str
    combos: dict[tuple[str, ...], dict[str, float]] = field(default_factory=dict)

    def miss_rate(self, combo: tuple[str, ...], name: str) -> float:
        return self.combos[combo][name]

    def format(self) -> str:
        rows = []
        for combo, rates in self.combos.items():
            paper = PAPER_TABLE1.get(combo, {})
            for name in combo:
                rows.append(
                    [
                        "+".join(combo),
                        name,
                        rates[name],
                        paper.get(name, float("nan")),
                    ]
                )
        return format_table(
            ["workload", "benchmark", "miss rate (ours)", "miss rate (paper)"],
            rows,
            title=f"Table 1 — interference on a shared {self.cache_label}",
        )


def table1_combos() -> list[tuple[str, ...]]:
    """The paper's combination order: alone, all pairs, all four."""
    combos: list[tuple[str, ...]] = [(name,) for name in QUARTET]
    combos += list(combinations(QUARTET, 2))
    combos.append(QUARTET)
    return combos


def run_table1_combo(
    combo: tuple[str, ...],
    refs: int,
    seed: int = 1,
    size_bytes: int = 1 << 20,
    associativity: int = 4,
) -> dict[str, float]:
    """One cell of Table 1: the given benchmarks sharing the cache.

    ``refs`` is the already-scaled per-application reference count. Each
    combination is an independent simulation (its traces are regenerated
    from the seed), which is what lets ``repro.campaign`` run the cells
    of this table as parallel jobs with byte-identical results.
    """
    traces = build_traces(list(combo), refs, seed)
    run = run_traditional_workload(traces, size_bytes, associativity)
    return {name: run.miss_rate(asid) for asid, name in enumerate(combo)}


def run_table1(
    refs_per_app: int = 500_000,
    seed: int = 1,
    size_bytes: int = 1 << 20,
    associativity: int = 4,
) -> Table1Result:
    """Reproduce Table 1: alone, all pairs, and all four concurrently."""
    refs = scaled(refs_per_app)
    result = Table1Result(
        cache_label=f"{size_bytes >> 20}MB {associativity}-way L2"
    )
    for combo in table1_combos():
        result.combos[combo] = run_table1_combo(
            combo, refs, seed, size_bytes, associativity
        )
    return result
