"""Experiment harnesses — one module per table/figure of the paper.

Each ``run_*`` function is self-contained: it builds the workloads, runs
the simulations, and returns a structured result object with a
``format()`` method printing the same rows/series the paper reports.
Reference counts scale with the ``REPRO_SCALE`` environment variable.
"""

from repro.sim.experiments.common import (
    build_traces,
    run_molecular_workload,
    run_traditional_workload,
)
from repro.sim.experiments.table1 import (
    Table1Result,
    run_table1,
    run_table1_combo,
    table1_combos,
)
from repro.sim.experiments.figure5 import (
    Figure5Result,
    figure5_series,
    run_figure5,
    run_figure5_cell,
)
from repro.sim.experiments.table2 import Table2Result, run_table2
from repro.sim.experiments.figure6 import Figure6Result, run_figure6
from repro.sim.experiments.table4 import Table4Result, run_table4
from repro.sim.experiments.table5 import Table5Result, run_table5

__all__ = [
    "Figure5Result",
    "Figure6Result",
    "Table1Result",
    "Table2Result",
    "Table4Result",
    "Table5Result",
    "build_traces",
    "figure5_series",
    "run_figure5",
    "run_figure5_cell",
    "run_figure6",
    "run_molecular_workload",
    "run_table1",
    "run_table1_combo",
    "run_table2",
    "run_table4",
    "run_table5",
    "run_traditional_workload",
    "table1_combos",
]
