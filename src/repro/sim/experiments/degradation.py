"""Graceful degradation — throughput vs. fraction of failed molecules.

Not a paper table: a robustness experiment for the fault model of
:mod:`repro.faults`. The SPEC quartet runs on a 1 MB molecular cache
(one 256 KB tile per application); at the warm-up boundary a fraction of
all molecules suffers hard faults (round-robin across tiles, so no tile
is singled out) and the measured window runs entirely on the degraded
cache. The resizer repairs managed regions from whatever free molecules
survive, so small fractions should cost almost nothing — the interesting
part of the curve is where the free pool runs out and capacity is
genuinely gone.

Reported per fraction: how many molecules actually retired (faults on a
region at its minimum size are refused) and were re-granted, the
post-warm-up miss rate, the mean access latency of the cache model, and
relative IPC — the throughput of the CMP timing model (references per
unit time) normalised to the fault-free run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigError
from repro.faults.spec import FaultPlan, FaultSpec
from repro.molecular.config import MolecularCacheConfig
from repro.sim.experiments.common import (
    build_traces,
    run_molecular_workload,
    warmup_for,
)
from repro.sim.report import format_table
from repro.sim.scale import scaled
from repro.workloads.spec import SPEC_QUARTET

#: Fractions of the cache's molecules hit by hard faults.
DEFAULT_FRACTIONS = (0.0, 0.125, 0.25, 0.5)
#: Miss-rate goal every application is managed towards.
GOAL = 0.25


def degradation_config() -> MolecularCacheConfig:
    """1 MB: one cluster of four 256 KB tiles (32 x 8 KB molecules each)."""
    return MolecularCacheConfig(
        molecule_bytes=8 * 1024,
        molecules_per_tile=32,
        tiles_per_cluster=4,
        clusters=1,
        placement="randy",
    )


def degradation_plan(
    fraction: float, at: int, config: MolecularCacheConfig | None = None
) -> FaultPlan:
    """Hard-fault ``fraction`` of all molecules at ``at``, spread
    round-robin across tiles (failure is not concentrated on one tile)."""
    if not 0.0 <= fraction < 1.0:
        raise ConfigError(
            f"failed-molecule fraction must be in [0, 1), got {fraction}"
        )
    config = config or degradation_config()
    tiles = config.tiles_per_cluster * config.clusters
    total = tiles * config.molecules_per_tile
    count = int(round(fraction * total))
    return FaultPlan.of(
        FaultSpec(
            kind="hard",
            at=at,
            target=(i % tiles) * config.molecules_per_tile + i // tiles,
        )
        for i in range(count)
    )


@dataclass(slots=True)
class DegradationRow:
    """One point of the degradation curve."""

    fraction: float
    retired: int
    repaired: int
    miss_rate: float
    mean_latency: float
    throughput: float
    relative_ipc: float = 1.0


@dataclass(slots=True)
class DegradationResult:
    """The degradation curve, baseline (fraction 0) first."""

    rows: list[DegradationRow] = field(default_factory=list)

    def row(self, fraction: float) -> DegradationRow:
        for row in self.rows:
            if row.fraction == fraction:
                return row
        raise KeyError(fraction)

    @property
    def worst_relative_ipc(self) -> float:
        return min((row.relative_ipc for row in self.rows), default=1.0)

    def format(self) -> str:
        table_rows = [
            [
                f"{row.fraction:.1%}",
                row.retired,
                row.repaired,
                f"{row.miss_rate:.4f}",
                f"{row.mean_latency:.2f}",
                f"{row.relative_ipc:.3f}",
            ]
            for row in self.rows
        ]
        table = format_table(
            [
                "failed fraction",
                "retired",
                "repaired",
                "miss rate",
                "mean latency",
                "relative IPC",
            ],
            table_rows,
            title="Degradation — SPEC quartet vs fraction of failed molecules",
        )
        return (
            table
            + f"\nworst relative IPC: {self.worst_relative_ipc:.3f} "
            f"(1.000 = fault-free throughput)"
        )


def run_degradation_cell(fraction: float, refs: int, seed: int = 1) -> dict:
    """One fraction of the curve; returns a JSON-able metrics payload.

    The fault plan fires at the warm-up boundary, so the measured window
    sees only the degraded cache.
    """
    names = list(SPEC_QUARTET)
    traces = build_traces(names, refs, seed)
    warmup = warmup_for(refs, len(names))
    config = degradation_config()
    run = run_molecular_workload(
        traces,
        config,
        goals={asid: GOAL for asid in range(len(names))},
        tile_assignment={asid: asid for asid in range(len(names))},
        warmup_refs=warmup,
        faults=degradation_plan(fraction, at=warmup, config=config) or None,
    )
    stats = run.cache.stats
    accesses = stats.total.accesses
    return {
        "fraction": fraction,
        "retired": stats.molecules_retired,
        "repaired": stats.molecules_repaired,
        "miss_rate": run.result.overall_miss_rate(),
        "mean_latency": stats.latency_cycles / accesses if accesses else 0.0,
        "throughput": (
            run.result.total_refs / run.result.end_time
            if run.result.end_time
            else 0.0
        ),
    }


def resolve_fractions(fractions) -> tuple[float, ...]:
    """Sorted, deduplicated fractions with the 0.0 baseline forced in."""
    resolved = sorted({0.0, *(float(f) for f in fractions or DEFAULT_FRACTIONS)})
    for fraction in resolved:
        if not 0.0 <= fraction < 1.0:
            raise ConfigError(
                f"failed-molecule fraction must be in [0, 1), got {fraction}"
            )
    return tuple(resolved)


def assemble_rows(cells: list[dict]) -> DegradationResult:
    """Fold per-fraction payloads (baseline first) into the curve."""
    result = DegradationResult()
    baseline = cells[0]["throughput"]
    for cell in cells:
        result.rows.append(
            DegradationRow(
                fraction=cell["fraction"],
                retired=cell["retired"],
                repaired=cell["repaired"],
                miss_rate=cell["miss_rate"],
                mean_latency=cell["mean_latency"],
                throughput=cell["throughput"],
                relative_ipc=(
                    cell["throughput"] / baseline if baseline else 1.0
                ),
            )
        )
    return result


def run_degradation(
    refs_per_app: int = 200_000,
    seed: int = 1,
    fractions=None,
) -> DegradationResult:
    """Sweep the degradation curve serially."""
    refs = scaled(refs_per_app)
    cells = [
        run_degradation_cell(fraction, refs, seed)
        for fraction in resolve_fractions(fractions)
    ]
    return assemble_rows(cells)
