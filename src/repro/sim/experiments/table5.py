"""Table 5 — the power-deviation product.

Combines Table 2's deviations with Table 4's powers: for the 8 MB 4-way
and 8-way traditional caches, the product of their dynamic power and their
mixed-workload deviation, against the 6 MB molecular cache (Randy) running
at the same frequencies. The paper reports the molecular cache winning
both comparisons (0.909 vs 1.890 and 0.425 vs 0.870).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.power.energy import MolecularEnergyModel
from repro.power.metrics import power_deviation_product
from repro.power.model import CacheOrganization, CactiModel
from repro.sim.experiments.table2 import Table2Result, run_table2
from repro.sim.experiments.table4 import TABLE3_MOLECULAR, TRADITIONAL_PORTS
from repro.sim.report import format_table

#: Paper Table 5 values: traditional label -> (traditional PDP, molecular PDP).
PAPER_TABLE5 = {
    "8MB 4way": (1.890, 0.909),
    "8MB 8way": (0.870, 0.425),
}


@dataclass(slots=True)
class Table5Row:
    cache_type: str
    traditional_pdp: float
    molecular_pdp: float
    paper_traditional_pdp: float
    paper_molecular_pdp: float

    @property
    def molecular_wins(self) -> bool:
        return self.molecular_pdp < self.traditional_pdp


@dataclass(slots=True)
class Table5Result:
    rows: list[Table5Row] = field(default_factory=list)

    def row(self, cache_type: str) -> Table5Row:
        for row in self.rows:
            if row.cache_type == cache_type:
                return row
        raise KeyError(cache_type)

    def format(self) -> str:
        table_rows = [
            [
                row.cache_type,
                f"{row.traditional_pdp:.3f} ({row.paper_traditional_pdp:.3f})",
                f"{row.molecular_pdp:.3f} ({row.paper_molecular_pdp:.3f})",
            ]
            for row in self.rows
        ]
        return format_table(
            ["cache type", "PDP trad (paper)", "PDP molecular (paper)"],
            table_rows,
            title="Table 5 — power-deviation product; ours (paper)",
        )


def run_table5(
    table2: Table2Result | None = None,
    refs_per_app: int = 300_000,
    seed: int = 1,
    model: CactiModel | None = None,
) -> Table5Result:
    """Reproduce Table 5. Pass an existing Table 2 result to reuse its
    (expensive) simulations; otherwise one is run."""
    model = model or CactiModel()
    if table2 is None:
        table2 = run_table2(refs_per_app=refs_per_app, seed=seed)
    energy = MolecularEnergyModel(TABLE3_MOLECULAR, model)
    randy_run = table2.molecular_runs.get("randy")
    if randy_run is None:
        raise ValueError("Table 5 needs a Randy molecular run in the Table 2 result")
    molecular_deviation = table2.deviations["6MB Molecular Randy"]
    mixed_stats = randy_run.cache.stats

    result = Table5Result()
    for label, assoc in (("8MB 4way", 4), ("8MB 8way", 8)):
        if label not in table2.deviations:
            continue
        evaluation = model.evaluate(
            CacheOrganization(
                TABLE3_MOLECULAR.total_bytes,
                assoc,
                TABLE3_MOLECULAR.line_bytes,
                TRADITIONAL_PORTS,
            )
        )
        freq = evaluation.frequency_mhz
        trad_pdp = power_deviation_product(
            evaluation.power_watts(), table2.deviations[label]
        )
        mol_pdp = power_deviation_product(
            energy.average_power_w(mixed_stats, freq), molecular_deviation
        )
        paper_trad, paper_mol = PAPER_TABLE5[label]
        result.rows.append(
            Table5Row(
                cache_type=label,
                traditional_pdp=trad_pdp,
                molecular_pdp=mol_pdp,
                paper_traditional_pdp=paper_trad,
                paper_molecular_pdp=paper_mol,
            )
        )
    return result
