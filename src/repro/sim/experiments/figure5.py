"""Figure 5 — average deviation from the miss-rate goal vs cache size.

Graph A: a 10 % goal for all four SPEC benchmarks; Graph B: a 10 % goal
for art/ammp/parser only (mcf unmanaged). Six cache designs at 1/2/4/8 MB:
direct-mapped, 2/4/8-way LRU (shared), and molecular caches (4 tiles, one
cluster) with the Random and Randy placement policies.

The paper's headline behaviour: traditional deviations fall smoothly with
size and associativity; molecular deviations collapse at a *threshold*
size (4 MB for graph A, 2 MB for graph B) once enough free molecules exist
for every partition to reach its goal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.metrics import DeviationMode, average_deviation
from repro.common.errors import ConfigError
from repro.molecular.config import MolecularCacheConfig
from repro.sim.experiments.common import (
    build_traces,
    run_molecular_workload,
    run_traditional_workload,
)
from repro.sim.report import format_series
from repro.sim.scale import scaled

#: Application order; each gets its own tile in the molecular runs.
APPS = ("art", "ammp", "parser", "mcf")
GOAL = 0.10
SIZES_MB = (1, 2, 4, 8)

TRADITIONAL_SERIES = (
    ("Direct Mapped", 1),
    ("2-way", 2),
    ("4-way", 4),
    ("8-way", 8),
)
MOLECULAR_SERIES = (
    ("Molecular (Random)", "random"),
    ("Molecular (Randy)", "randy"),
)


@dataclass(slots=True)
class Figure5Result:
    """Deviation series per cache design, indexed by cache size."""

    graph: str
    sizes_mb: tuple[int, ...]
    series: dict[str, list[float]] = field(default_factory=dict)
    miss_rates: dict[tuple[str, int], dict[str, float]] = field(default_factory=dict)

    def deviation(self, series_name: str, size_mb: int) -> float:
        return self.series[series_name][self.sizes_mb.index(size_mb)]

    def format(self) -> str:
        return format_series(
            "size",
            [f"{mb}MB" for mb in self.sizes_mb],
            self.series,
            title=(
                f"Figure 5 graph {self.graph} — average deviation from the "
                f"{GOAL:.0%} miss-rate goal"
            ),
        )


def goals_for_graph(graph: str) -> dict[int, float | None]:
    """Graph A manages all four applications; graph B leaves mcf alone."""
    graph = graph.upper()
    if graph == "A":
        return {asid: GOAL for asid in range(len(APPS))}
    if graph == "B":
        return {
            asid: (None if APPS[asid] == "mcf" else GOAL)
            for asid in range(len(APPS))
        }
    raise ConfigError(f"Figure 5 has graphs 'A' and 'B', not {graph!r}")


def figure5_series() -> list[tuple[str, str, int | str]]:
    """Every design series as ``(label, kind, parameter)``.

    ``kind`` is ``"traditional"`` (parameter = associativity) or
    ``"molecular"`` (parameter = placement policy), in the figure's
    series order — the order ``run_figure5`` builds its result in.
    """
    series: list[tuple[str, str, int | str]] = [
        (label, "traditional", assoc) for label, assoc in TRADITIONAL_SERIES
    ]
    series += [
        (label, "molecular", placement) for label, placement in MOLECULAR_SERIES
    ]
    return series


def run_figure5_cell(
    kind: str,
    parameter: int | str,
    size_mb: int,
    graph: str = "A",
    refs: int = 400_000,
    seed: int = 1,
    deviation_mode: DeviationMode = DeviationMode.ABSOLUTE,
    traces=None,
) -> tuple[float, dict[str, float]]:
    """One design x size cell of Figure 5: ``(deviation, miss rates)``.

    ``refs`` is the already-scaled per-application reference count.
    ``traces`` lets a serial sweep reuse one trace set across cells;
    when omitted the traces are regenerated from the seed, which yields
    the identical reference stream — the property ``repro.campaign``
    relies on to run cells in parallel workers byte-identically.
    """
    goals = goals_for_graph(graph)
    if traces is None:
        traces = build_traces(list(APPS), refs, seed)
    if kind == "traditional":
        run = run_traditional_workload(traces, size_mb << 20, parameter)
        rates = run.miss_rates()
    elif kind == "molecular":
        config = MolecularCacheConfig.for_total_size(
            size_mb << 20, clusters=1, tiles_per_cluster=4, strict=False
        )
        mol = run_molecular_workload(
            traces,
            config,
            goals,
            placement=parameter,
            tile_assignment={asid: asid for asid in range(len(APPS))},
        )
        rates = mol.miss_rates
    else:
        raise ConfigError(f"unknown Figure 5 series kind {kind!r}")
    deviation = average_deviation(rates, goals, deviation_mode)
    return deviation, {APPS[a]: r for a, r in rates.items()}


def run_figure5(
    graph: str = "A",
    refs_per_app: int = 400_000,
    seed: int = 1,
    sizes_mb: tuple[int, ...] = SIZES_MB,
    deviation_mode: DeviationMode = DeviationMode.ABSOLUTE,
) -> Figure5Result:
    """Reproduce one graph of Figure 5."""
    refs = scaled(refs_per_app)
    result = Figure5Result(graph=graph.upper(), sizes_mb=tuple(sizes_mb))
    traces = build_traces(list(APPS), refs, seed)

    for label, kind, parameter in figure5_series():
        deviations: list[float] = []
        for size_mb in sizes_mb:
            deviation, rates = run_figure5_cell(
                kind,
                parameter,
                size_mb,
                graph=graph,
                refs=refs,
                seed=seed,
                deviation_mode=deviation_mode,
                traces=traces,
            )
            deviations.append(deviation)
            result.miss_rates[(label, size_mb)] = rates
        result.series[label] = deviations

    return result
