"""Table 4 — CACTI power results at 0.07 µm.

For each 8 MB traditional cache (DM / 2-way / 4-way / 8-way, 4 ports) the
model reports its maximum frequency and dynamic power; the 8 MB molecular
cache (Table 3 geometry: 8 KB molecules, 512 KB tiles, 4 clusters x 4
tiles, one port per cluster) is evaluated *at the traditional cache's
frequency* in two columns:

* worst case — every molecule of a tile probed each access;
* average mixed workload — the probe counts actually recorded when running
  the 12-benchmark mix of Table 2.

The paper's headline 29 % power advantage is the 8-way row: 2.55 W
(molecular worst case) vs 3.58 W (traditional).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.molecular.config import MolecularCacheConfig
from repro.molecular.stats import MolecularStats
from repro.power.energy import MolecularEnergyModel
from repro.power.model import CacheOrganization, CactiModel
from repro.power.tables import PAPER_TABLE4_MOLECULAR, PAPER_TABLE4_TRADITIONAL
from repro.sim.experiments.table2 import run_table2
from repro.sim.report import format_table

#: Table 3: the molecular cache compared throughout section 4's power study.
TABLE3_MOLECULAR = MolecularCacheConfig(
    molecule_bytes=8 * 1024,
    molecules_per_tile=64,
    tiles_per_cluster=4,
    clusters=4,
    placement="randy",
)
TRADITIONAL_PORTS = 4
ASSOCIATIVITIES = (1, 2, 4, 8)


@dataclass(slots=True)
class Table4Row:
    """One row of Table 4."""

    cache_type: str
    frequency_mhz: float
    traditional_power_w: float
    molecular_worst_power_w: float
    molecular_average_power_w: float
    paper_frequency_mhz: float
    paper_traditional_power_w: float
    paper_molecular_worst_w: float
    paper_molecular_average_w: float

    @property
    def power_advantage(self) -> float:
        """Relative saving of the molecular worst case vs traditional."""
        if self.traditional_power_w == 0:
            return 0.0
        return 1.0 - self.molecular_worst_power_w / self.traditional_power_w


@dataclass(slots=True)
class Table4Result:
    rows: list[Table4Row] = field(default_factory=list)

    def row(self, cache_type: str) -> Table4Row:
        for row in self.rows:
            if row.cache_type == cache_type:
                return row
        raise KeyError(cache_type)

    @property
    def headline_advantage(self) -> float:
        """The paper's 29 % claim: molecular vs the 8-way baseline."""
        return self.row("8MB 8way").power_advantage

    def format(self) -> str:
        table_rows = []
        for row in self.rows:
            table_rows.append(
                [
                    row.cache_type,
                    f"{row.frequency_mhz:.0f} ({row.paper_frequency_mhz:.0f})",
                    f"{row.traditional_power_w:.2f} ({row.paper_traditional_power_w:.2f})",
                    f"{row.molecular_worst_power_w:.2f} ({row.paper_molecular_worst_w:.2f})",
                    f"{row.molecular_average_power_w:.2f} ({row.paper_molecular_average_w:.2f})",
                ]
            )
        table = format_table(
            [
                "cache type",
                "freq MHz (paper)",
                "power W (paper)",
                "mol worst W (paper)",
                "mol avg W (paper)",
            ],
            table_rows,
            title="Table 4 — power at 0.07um; ours (paper)",
        )
        return (
            table
            + f"\nheadline molecular power advantage vs 8MB 8way: "
            f"{self.headline_advantage:.1%} (paper: 29%)"
        )


def run_table4(
    mixed_stats: MolecularStats | None = None,
    refs_per_app: int = 150_000,
    seed: int = 1,
    model: CactiModel | None = None,
) -> Table4Result:
    """Reproduce Table 4.

    ``mixed_stats`` supplies the probe counters for the "average mixed
    workload" column; when omitted, a (scaled-down) Table 2 Randy run is
    performed to collect them.
    """
    model = model or CactiModel()
    energy = MolecularEnergyModel(TABLE3_MOLECULAR, model)
    if mixed_stats is None:
        table2 = run_table2(
            refs_per_app=refs_per_app,
            seed=seed,
            include_traditional=False,
            placements=("randy",),
        )
        mixed_stats = table2.molecular_runs["randy"].cache.stats

    result = Table4Result()
    size = TABLE3_MOLECULAR.total_bytes
    for assoc in ASSOCIATIVITIES:
        evaluation = model.evaluate(
            CacheOrganization(size, assoc, TABLE3_MOLECULAR.line_bytes, TRADITIONAL_PORTS)
        )
        freq = evaluation.frequency_mhz
        paper_freq, paper_power = PAPER_TABLE4_TRADITIONAL[assoc]
        paper_worst, paper_avg = PAPER_TABLE4_MOLECULAR[assoc]
        result.rows.append(
            Table4Row(
                cache_type=f"8MB {assoc}way" if assoc > 1 else "8MB DM",
                frequency_mhz=freq,
                traditional_power_w=evaluation.power_watts(),
                molecular_worst_power_w=energy.worst_case_power_w(freq),
                molecular_average_power_w=energy.average_power_w(mixed_stats, freq),
                paper_frequency_mhz=paper_freq,
                paper_traditional_power_w=paper_power,
                paper_molecular_worst_w=paper_worst,
                paper_molecular_average_w=paper_avg,
            )
        )
    return result
