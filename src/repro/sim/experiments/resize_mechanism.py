"""Flush vs consistent-hashing resize mechanisms under churn.

Not a paper table: the evaluation for the second resize backend
(:mod:`repro.molecular.chash`, DESIGN.md section 13). Two applications
walk a *phased* footprint — the hot set alternates between one that fits
a freshly shrunk partition and one several times larger — with
write-heavy traffic, so Algorithm 1 keeps cycling grow/withdraw; a burst
of hard faults at mid-run exercises the repair path too. Every cell
replays the **same** access stream (the generator is seeded
independently of mechanism and trigger), so the backends differ only in
how they apply each capacity change.

Per ``trigger x mechanism`` cell the experiment reports:

* **data moved** — the resize traffic a backend caused, in base lines:
  ``resize_blocks_moved`` (lines a resize displaced from their home
  molecule, under either backend — see
  :class:`repro.molecular.stats.MolecularStats`) plus
  ``flush_writebacks`` (dirty lines the resize pushed across the memory
  bus). A dirty line a flush discards is counted twice — once displaced,
  once written back — because it crosses the bus twice (writeback now,
  refill later); a chash adoption keeps it on-chip and counts once. The
  acceptance bar for the chash backend is moving *strictly less* than
  flush here.
* **miss-rate recovery** — for every grow/withdraw/repair in the resize
  log, the references until the windowed miss rate first returns to the
  run's median; reported as the mean per action class.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from statistics import mean, median

from repro.common.errors import ConfigError
from repro.faults.injector import apply_fault
from repro.faults.spec import FaultSpec
from repro.molecular.cache import MolecularCache
from repro.molecular.config import MolecularCacheConfig, ResizePolicy
from repro.sim.report import format_table
from repro.sim.scale import scaled

#: The grid axes. Triggers are the resize engine's three schemes;
#: mechanisms are the two backends behind the ResizeMechanism interface.
TRIGGERS = ("constant", "global_adaptive", "per_app_adaptive")
MECHANISMS = ("flush", "chash")

#: Miss-rate goal both applications are managed towards.
GOAL = 0.25
#: Window (references) for the recovery-time miss-rate series.
WINDOW = 250
#: Fixed footprint-phase length in references. Fixed (rather than a
#: fraction of the run) so churn density — and with it the flush/chash
#: comparison — is scale-invariant in ``refs``.
PHASE_LEN = 3_750
#: Hard-fault bursts: (position as a fraction of refs, molecules hit).
FAULT_BURSTS = ((0.45, 2), (0.7, 2))


def mechanism_config() -> MolecularCacheConfig:
    """Two 16-molecule tiles of 1 KB molecules (16 lines each).

    Small enough that the phased footprints actually overflow and drain
    partitions — the point is resize churn, not steady state.
    """
    return MolecularCacheConfig(
        molecule_bytes=1024,
        line_bytes=64,
        molecules_per_tile=16,
        tiles_per_cluster=2,
        clusters=1,
        placement="randy",
        strict=False,
    )


def churn_trace(refs: int, seed: int) -> list[tuple[int, int, bool]]:
    """``(block, asid, write)`` triples with anti-phase hot sets.

    Deterministic in ``(refs, seed)`` only — every cell of the grid
    replays the identical stream. The two applications' hot sets swap
    sizes every :data:`PHASE_LEN` references (one walks 32 blocks while
    the other walks 160, then they trade), so capacity must shuttle
    between the regions all run long; 60% of references write, so the
    capacity being shuttled is dirty when the resizer takes it.
    """
    rng = random.Random(f"{seed}/resize-mechanism-churn")
    ops: list[tuple[int, int, bool]] = []
    for index in range(refs):
        phase = index // PHASE_LEN
        asid = 0 if rng.random() < 0.6 else 1
        base = 1 + asid * 1_000_000
        if asid == 0:
            span = 160 if phase % 2 else 32
        else:
            span = 32 if phase % 2 else 160
        if rng.random() < 0.85:
            block = base + rng.randrange(span)
        else:
            block = base + span + rng.randrange(span * 4)
        ops.append((block, asid, rng.random() < 0.6))
    return ops


def _inject_burst(cache: MolecularCache, count: int) -> None:
    """Retire ``count`` of region 0's molecules (deterministic choice)."""
    region = cache.regions.get(0)
    if region is None:
        return
    owned = sorted(m.molecule_id for m in region.molecules())[:count]
    for molecule_id in owned:
        apply_fault(cache, FaultSpec(kind="hard", at=0, target=molecule_id))


def _recovery(
    log: list[tuple[int, int, str, int]],
    windows: list[tuple[int, float]],
    refs: int,
) -> dict[str, float | None]:
    """Mean references-to-recovery per resize action class.

    Recovery of one event at access ``a``: the gap to the end of the
    first later window whose miss rate is back at (or below) the run's
    median. Events that never recover are censored at end-of-run, which
    biases *against* the backend that caused the damage — exactly the
    comparison we want.
    """
    if not windows:
        return {"grow": None, "withdraw": None, "repair": None, "overall": None}
    baseline = median(rate for _, rate in windows)
    samples: dict[str, list[int]] = {"grow": [], "withdraw": [], "repair": []}
    for accesses, _asid, action, _amount in log:
        if action not in samples:
            continue
        for end, rate in windows:
            if end <= accesses:
                continue
            if rate <= baseline:
                samples[action].append(end - accesses)
                break
        else:
            samples[action].append(max(refs - accesses, 0))
    out: dict[str, float | None] = {
        action: (mean(values) if values else None)
        for action, values in samples.items()
    }
    merged = [value for values in samples.values() for value in values]
    out["overall"] = mean(merged) if merged else None
    return out


def run_resize_mechanism_cell(
    mechanism: str, trigger: str, refs: int, seed: int = 1
) -> dict:
    """One grid cell; returns a JSON-able metrics payload."""
    if mechanism not in MECHANISMS:
        raise ConfigError(
            f"unknown resize mechanism {mechanism!r}; expected one of "
            f"{MECHANISMS}"
        )
    if trigger not in TRIGGERS:
        raise ConfigError(
            f"unknown trigger {trigger!r}; expected one of {TRIGGERS}"
        )
    config = mechanism_config()
    policy = ResizePolicy(
        period=1_000,
        trigger=trigger,
        period_floor=500,
        # A low cap keeps the adaptive triggers actively resizing (an
        # idle converged period would measure nothing) so every cell
        # compares the mechanisms under sustained churn.
        period_cap=4_000,
        min_window_refs=32,
        max_allocation=2,
        mechanism=mechanism,
    )
    cache = MolecularCache(config, policy, placement="randy")
    cache.assign_application(0, goal=GOAL, tile_id=0)
    cache.assign_application(1, goal=GOAL, tile_id=1)

    ops = churn_trace(refs, seed)
    bursts = {
        max(1, int(refs * position)): count for position, count in FAULT_BURSTS
    }
    stats = cache.stats
    windows: list[tuple[int, float]] = []
    window_mark_acc = window_mark_miss = 0
    for index, (block, asid, write) in enumerate(ops):
        burst = bursts.get(index)
        if burst:
            _inject_burst(cache, burst)
        cache.access_block(block, asid, write)
        if (index + 1) % WINDOW == 0:
            accesses = stats.total.accesses
            misses = stats.total.misses
            delta_acc = accesses - window_mark_acc
            delta_miss = misses - window_mark_miss
            windows.append(
                (accesses, delta_miss / delta_acc if delta_acc else 0.0)
            )
            window_mark_acc, window_mark_miss = accesses, misses

    log = list(cache.resizer.log)
    blocks_moved = stats.resize_blocks_moved
    flush_writebacks = stats.flush_writebacks
    return {
        "mechanism": mechanism,
        "trigger": trigger,
        "miss_rate": stats.total.miss_rate,
        "granted": stats.molecules_granted,
        "withdrawn": stats.molecules_withdrawn,
        "repaired": stats.molecules_repaired,
        "blocks_moved": blocks_moved,
        "flush_writebacks": flush_writebacks,
        "spill_writebacks": stats.resize_spill_writebacks,
        "remap_work": stats.resize_remap_work,
        "data_moved": blocks_moved + flush_writebacks,
        "recovery": _recovery(log, windows, refs),
    }


def resolve_grid(resize_mechanism: str | None = None) -> list[tuple[str, str]]:
    """(trigger, mechanism) cells, trigger-major for the report tables."""
    if resize_mechanism is None:
        mechanisms: tuple[str, ...] = MECHANISMS
    elif resize_mechanism in MECHANISMS:
        mechanisms = (resize_mechanism,)
    else:
        raise ConfigError(
            f"unknown resize mechanism {resize_mechanism!r}; expected one "
            f"of {MECHANISMS}"
        )
    return [
        (trigger, mechanism)
        for trigger in TRIGGERS
        for mechanism in mechanisms
    ]


@dataclass(slots=True)
class ResizeMechanismResult:
    """The grid plus the flush-vs-chash verdicts."""

    cells: list[dict] = field(default_factory=list)

    def cell(self, trigger: str, mechanism: str) -> dict:
        for cell in self.cells:
            if cell["trigger"] == trigger and cell["mechanism"] == mechanism:
                return cell
        raise KeyError((trigger, mechanism))

    def verdicts(self) -> list[tuple[str, int, int]]:
        """Per trigger with both backends: (trigger, flush, chash) moved."""
        out = []
        for trigger in TRIGGERS:
            try:
                flush = self.cell(trigger, "flush")
                chash = self.cell(trigger, "chash")
            except KeyError:
                continue
            out.append((trigger, flush["data_moved"], chash["data_moved"]))
        return out

    @property
    def chash_strictly_less(self) -> bool | None:
        """True iff chash moved strictly fewer lines for every trigger."""
        verdicts = self.verdicts()
        if not verdicts:
            return None
        return all(chash < flush for _, flush, chash in verdicts)

    def format(self) -> str:
        def fmt_recovery(value: float | None) -> str:
            return f"{value:.0f}" if value is not None else "-"

        rows = [
            [
                cell["trigger"],
                cell["mechanism"],
                f"{cell['miss_rate']:.4f}",
                cell["granted"],
                cell["withdrawn"],
                cell["repaired"],
                cell["blocks_moved"],
                cell["flush_writebacks"],
                cell["data_moved"],
                fmt_recovery(cell["recovery"]["grow"]),
                fmt_recovery(cell["recovery"]["withdraw"]),
                fmt_recovery(cell["recovery"]["repair"]),
            ]
            for cell in self.cells
        ]
        table = format_table(
            [
                "trigger",
                "mechanism",
                "miss rate",
                "granted",
                "wdrawn",
                "repaired",
                "moved",
                "flush wb",
                "data moved",
                "rec grow",
                "rec wdraw",
                "rec repair",
            ],
            rows,
            title=(
                "Resize mechanisms — flush vs consistent hashing under "
                "grow/shrink/repair churn"
            ),
        )
        lines = [table]
        for trigger, flush, chash in self.verdicts():
            saved = 100.0 * (1.0 - chash / flush) if flush else 0.0
            lines.append(
                f"{trigger}: chash moved {chash} lines vs {flush} flushed "
                f"({saved:.1f}% less resize traffic)"
            )
        verdict = self.chash_strictly_less
        if verdict is not None:
            state = "STRICTLY LESS" if verdict else "NOT strictly less"
            lines.append(
                f"verdict: chash data moved is {state} than flush across "
                f"all triggers (recovery columns are mean refs to return "
                f"to the median windowed miss rate)"
            )
        return "\n".join(lines)


def assemble_cells(cells: list[dict]) -> ResizeMechanismResult:
    """Fold per-cell payloads (grid order) into the result."""
    return ResizeMechanismResult(cells=list(cells))


def run_resize_mechanism(
    refs_per_app: int = 60_000,
    seed: int = 1,
    resize_mechanism: str | None = None,
) -> ResizeMechanismResult:
    """Sweep the trigger x mechanism grid serially."""
    refs = scaled(refs_per_app)
    cells = [
        run_resize_mechanism_cell(mechanism, trigger, refs, seed)
        for trigger, mechanism in resolve_grid(resize_mechanism)
    ]
    return assemble_cells(cells)
