"""Tenancy sweep — allocation policies vs tenant count, churn and skew.

Not a paper table: the multi-tenant cache-service experiment
(:mod:`repro.tenants`) motivated by the ROADMAP's "cache service with
millions of users" direction. A shared pool of blocks is partitioned
among N tenants whose key popularity is Zipfian and whose activity
churns (arrive/depart/idle epochs, bursts); each cell runs one
allocation policy over one ``(tenants, churn, skew)`` point of the grid
and reports aggregate and mean per-tenant hit rate, Jain fairness,
SLA-violation pressure and reallocation churn.

The interesting comparison is ``need`` (Memshare-style marginal-gain
transfers) against ``static`` (equal split): at high tenant skew the
busy tenants are starved by an equal split, so need-driven transfer
should win aggregate hit rate — the assembled report ends with that
verdict, and ``benchmarks/test_bench_tenancy.py`` pins it in the
benchmark ledger.

Every cell is an independent campaign job: the trace is regenerated
from ``(spec, seed)`` inside the worker, so a parallel sweep is
byte-identical to the serial one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigError
from repro.sim.report import format_table
from repro.sim.scale import scaled
from repro.tenants.accounting import TenantAccounting
from repro.tenants.policies import make_policy, policy_names
from repro.tenants.service import CacheService
from repro.workloads.tenants import TenantWorkloadSpec

DEFAULT_TENANTS = (10, 100)
DEFAULT_CHURN = (0.0, 0.3)
DEFAULT_SKEW = (0.5, 1.0)
#: Blocks each tenant's key space spans; capacity is a quarter of the sum.
FOOTPRINT_BLOCKS = 128
#: Zipf skew of key popularity inside each tenant.
KEY_SKEW = 0.9
#: Target per-tenant miss rate for SLA tracking (and the alg1 goal).
SLA_MISS_RATE = 0.40
EPOCHS = 10


def tenancy_spec(tenants: int, churn: float, skew: float) -> TenantWorkloadSpec:
    """The workload for one grid point (churny mixes also idle + burst)."""
    return TenantWorkloadSpec(
        name=f"tenancy-{tenants}t",
        tenants=tenants,
        footprint_blocks=FOOTPRINT_BLOCKS,
        key_skew=KEY_SKEW,
        tenant_skew=skew,
        churn=churn,
        idle_fraction=0.25 if churn else 0.0,
        burst=0.2 if churn else 0.0,
        epochs=EPOCHS,
    )


def run_tenancy_cell(
    tenants: int,
    churn: float,
    skew: float,
    policy: str,
    refs: int,
    seed: int = 1,
    telemetry=None,
) -> dict:
    """One grid cell; returns a JSON-able metrics payload."""
    spec = tenancy_spec(tenants, churn, skew)
    trace = spec.generate(refs, seed=seed)
    capacity = max(tenants * FOOTPRINT_BLOCKS // 4, 64)
    service = CacheService(
        capacity_blocks=capacity,
        policy=make_policy(policy),
        accounting=TenantAccounting(sla_miss_rate=SLA_MISS_RATE),
        telemetry=telemetry,
        epoch_refs=max(refs // EPOCHS, 1),
    )
    result = service.run(trace)
    rates = result.tenant_hit_rates()
    return {
        "tenants": tenants,
        "churn": churn,
        "skew": skew,
        "policy": policy,
        "seen": result.tenants_seen,
        "aggregate_hit_rate": result.aggregate_hit_rate(),
        "mean_hit_rate": (
            sum(rates.values()) / len(rates) if rates else 0.0
        ),
        "jain": result.mean_jain(),
        "sla_violations": result.sla_violations,
        "sla_violation_epochs": result.sla_violation_epochs,
        "moved_blocks": result.moved_blocks,
    }


def record_tenancy_cell(
    tenants: int,
    churn: float,
    skew: float,
    policy: str,
    refs: int,
    seed: int,
    path,
) -> tuple[dict, int]:
    """Run one cell with telemetry recorded to a JSONL file.

    Returns ``(payload, events_written)``; the stream replays with
    ``repro inspect`` (tenancy epoch table, SLA summary, hit-rate
    curves).
    """
    from repro.telemetry import EventBus, JsonlSink

    sink = JsonlSink(path)
    bus = EventBus([sink], epoch_refs=0)
    try:
        payload = run_tenancy_cell(
            tenants, churn, skew, policy, refs, seed=seed, telemetry=bus
        )
    finally:
        bus.close()
    return payload, sink.count


def resolve_axis(values, default, cast, label: str) -> tuple:
    """Sorted, deduplicated axis values with validation."""
    resolved = sorted({cast(v) for v in (values or default)})
    if not resolved:
        raise ConfigError(f"tenancy sweep needs at least one {label} value")
    return tuple(resolved)


def resolve_grid(options: dict) -> list[tuple[int, float, float, str]]:
    """The cell list, in deterministic sweep order."""
    tenants = resolve_axis(options.get("tenants"), DEFAULT_TENANTS, int, "tenants")
    if any(n < 1 for n in tenants):
        raise ConfigError("tenant counts must be >= 1")
    churn = resolve_axis(options.get("churn"), DEFAULT_CHURN, float, "churn")
    skew = resolve_axis(options.get("skew"), DEFAULT_SKEW, float, "skew")
    policies = tuple(options.get("policies") or policy_names())
    known = set(policy_names())
    unknown = [p for p in policies if p not in known]
    if unknown:
        raise ConfigError(
            f"unknown allocation policies {unknown}; available: {sorted(known)}"
        )
    return [
        (n, c, s, p)
        for n in tenants
        for c in churn
        for s in skew
        for p in policies
    ]


@dataclass(slots=True)
class TenancyResult:
    """The assembled sweep, in grid order."""

    rows: list[dict] = field(default_factory=list)

    def cell(self, tenants: int, churn: float, skew: float, policy: str) -> dict:
        for row in self.rows:
            if (
                row["tenants"] == tenants
                and row["churn"] == churn
                and row["skew"] == skew
                and row["policy"] == policy
            ):
                return row
        raise KeyError((tenants, churn, skew, policy))

    def _verdict(self) -> str:
        """need vs static at the most hostile grid point both ran."""
        points = sorted(
            {
                (row["tenants"], row["churn"], row["skew"])
                for row in self.rows
            },
            key=lambda p: (p[1], p[2], p[0]),
        )
        for tenants, churn, skew in reversed(points):
            try:
                need = self.cell(tenants, churn, skew, "need")
                static = self.cell(tenants, churn, skew, "static")
            except KeyError:
                continue
            delta = need["aggregate_hit_rate"] - static["aggregate_hit_rate"]
            comparison = "beats" if delta > 0 else "does NOT beat"
            return (
                f"verdict: need-driven {comparison} static split at "
                f"{tenants} tenants, churn {churn:g}, skew {skew:g} "
                f"({need['aggregate_hit_rate']:.4f} vs "
                f"{static['aggregate_hit_rate']:.4f}, "
                f"{delta:+.4f} aggregate hit rate)"
            )
        return "verdict: need/static comparison not in this grid"

    def format(self) -> str:
        table_rows = [
            [
                row["tenants"],
                f"{row['churn']:g}",
                f"{row['skew']:g}",
                row["policy"],
                f"{row['aggregate_hit_rate']:.4f}",
                f"{row['mean_hit_rate']:.4f}",
                f"{row['jain']:.3f}",
                row["sla_violation_epochs"],
                row["moved_blocks"],
            ]
            for row in self.rows
        ]
        table = format_table(
            [
                "tenants",
                "churn",
                "skew",
                "policy",
                "agg hit",
                "mean hit",
                "jain",
                "SLA epochs",
                "moved",
            ],
            table_rows,
            title="Tenancy sweep — allocation policy vs tenant mix",
        )
        return table + "\n" + self._verdict()


def assemble_cells(cells: list[dict]) -> TenancyResult:
    return TenancyResult(rows=list(cells))


def run_tenancy(
    refs_per_app: int = 60_000,
    seed: int = 1,
    tenants=None,
    churn=None,
    skew=None,
    policies=None,
) -> TenancyResult:
    """Sweep the tenancy grid serially."""
    refs = scaled(refs_per_app)
    grid = resolve_grid(
        {"tenants": tenants, "churn": churn, "skew": skew, "policies": policies}
    )
    return assemble_cells(
        [
            run_tenancy_cell(n, c, s, p, refs, seed)
            for n, c, s, p in grid
        ]
    )
