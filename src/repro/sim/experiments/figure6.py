"""Figure 6 — hits-per-molecule (HPM) for Random vs Randy placement.

For the mixed 12-benchmark workload of Table 2, the paper plots each
application's HPM (hit rate per allocated molecule, log scale) under the
two placement policies, and observes that Randy's HPM is higher for all
but four applications while achieving a ~9 % lower overall miss rate with
~5 % more molecules.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.experiments.common import MolecularRun
from repro.sim.experiments.table2 import Table2Result, run_table2
from repro.sim.report import format_table
from repro.workloads.mixed import MIXED_SUITE


@dataclass(slots=True)
class Figure6Result:
    """Per-application HPM for each placement policy."""

    hpm: dict[str, dict[str, float]] = field(default_factory=dict)
    overall_miss_rate: dict[str, float] = field(default_factory=dict)
    mean_molecules: dict[str, float] = field(default_factory=dict)

    @property
    def miss_rate_improvement(self) -> float:
        """Randy's relative miss-rate reduction vs Random (paper: ~9 %)."""
        random_mr = self.overall_miss_rate.get("random", 0.0)
        randy_mr = self.overall_miss_rate.get("randy", 0.0)
        if random_mr == 0:
            return 0.0
        return (random_mr - randy_mr) / random_mr

    @property
    def molecule_overhead(self) -> float:
        """Randy's relative extra molecule usage vs Random (paper: ~5 %)."""
        random_m = self.mean_molecules.get("random", 0.0)
        randy_m = self.mean_molecules.get("randy", 0.0)
        if random_m == 0:
            return 0.0
        return (randy_m - random_m) / random_m

    def format(self) -> str:
        policies = sorted(self.hpm)
        rows = []
        for name in MIXED_SUITE:
            rows.append([name, *[self.hpm[p].get(name, 0.0) for p in policies]])
        table = format_table(
            ["benchmark", *[f"HPM {p}" for p in policies]],
            rows,
            title="Figure 6 — hits per molecule, Random vs Randy",
            float_format="{:.5f}",
        )
        summary = (
            f"\noverall miss rate: "
            + ", ".join(f"{p}={self.overall_miss_rate[p]:.3f}" for p in policies)
            + f"\nmean molecules in use: "
            + ", ".join(f"{p}={self.mean_molecules[p]:.1f}" for p in policies)
            + f"\nRandy miss-rate improvement: {self.miss_rate_improvement:+.1%}"
            f" (paper: +9%) with {self.molecule_overhead:+.1%} more molecules"
            f" (paper: +5%)"
        )
        return table + summary


def _collect(run: MolecularRun) -> tuple[dict[str, float], float, float]:
    names = list(MIXED_SUITE)
    hpm: dict[str, float] = {}
    total_molecules = 0.0
    for asid, region in run.cache.regions.items():
        hpm[names[asid]] = region.hits_per_molecule()
        total_molecules += region.mean_molecules
    overall = run.result.overall_miss_rate()
    return hpm, overall, total_molecules


def run_figure6(
    refs_per_app: int = 300_000,
    seed: int = 1,
    table2: Table2Result | None = None,
) -> Figure6Result:
    """Reproduce Figure 6. Pass an existing Table 2 result to avoid
    re-running the (expensive) molecular simulations."""
    if table2 is None or not table2.molecular_runs:
        # run_table2 applies REPRO_SCALE itself.
        table2 = run_table2(
            refs_per_app=refs_per_app, seed=seed, include_traditional=False
        )
    result = Figure6Result()
    for placement, run in table2.molecular_runs.items():
        hpm, overall, molecules = _collect(run)
        result.hpm[placement] = hpm
        result.overall_miss_rate[placement] = overall
        result.mean_molecules[placement] = molecules
    return result
