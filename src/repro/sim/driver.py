"""Single-stream trace driver (no CMP timing model).

For experiments on one application — or pre-interleaved traces — where
issue-rate feedback is not wanted, :func:`run_trace` simply streams a trace
through a cache in order.
"""

from __future__ import annotations

from repro.common.errors import ConfigError
from repro.telemetry.bus import EventBus, attach_telemetry
from repro.trace.container import Trace


def run_trace(
    cache,
    trace: Trace,
    line_bytes: int = 64,
    warmup_refs: int = 0,
    telemetry: EventBus | None = None,
):
    """Stream ``trace`` through ``cache``; returns the cache's stats object.

    ``warmup_refs`` leading references are simulated but excluded from the
    returned statistics (the cache's counters are reset at that point).

    ``telemetry`` attaches an :class:`~repro.telemetry.bus.EventBus` for
    the duration of the run (caches without telemetry support ignore it);
    the tail epoch is flushed before returning, but the bus is left open —
    the caller owns its lifecycle.
    """
    if warmup_refs < 0:
        raise ConfigError("warmup_refs cannot be negative")
    if len(trace) > 0 and warmup_refs >= len(trace):
        raise ConfigError(
            f"warmup_refs ({warmup_refs}) must be smaller than the trace "
            f"length ({len(trace)}); nothing would be measured"
        )
    attach_telemetry(cache, telemetry)
    blocks = trace.block_list(line_bytes)
    asids = trace.asid_list()
    writes = trace.write_list()
    access_many = getattr(cache, "access_many", None)
    if access_many is not None:
        # Batched fast path: stream the warm-up prefix, reset, stream the
        # rest. Stats/telemetry are byte-identical to the scalar loop
        # below (tests/test_prop_batched.py holds the two to it).
        if warmup_refs:
            access_many(blocks[:warmup_refs], asids[:warmup_refs], writes[:warmup_refs])
            cache.stats.reset()
            access_many(blocks[warmup_refs:], asids[warmup_refs:], writes[warmup_refs:])
        else:
            access_many(blocks, asids, writes)
    else:
        access_block = cache.access_block
        for index, (block, asid, write) in enumerate(zip(blocks, asids, writes)):
            if index == warmup_refs and warmup_refs:
                cache.stats.reset()
            access_block(block, asid, write)
    if telemetry is not None:
        telemetry.flush_epoch()
    return cache.stats
