"""Single-stream trace driver (no CMP timing model).

For experiments on one application — or pre-interleaved traces — where
issue-rate feedback is not wanted, :func:`run_trace` simply streams a trace
through a cache in order.
"""

from __future__ import annotations

from repro.audit.invariants import audit_and_emit, resolve_cadence
from repro.common.errors import ConfigError
from repro.faults.injector import FaultInjector
from repro.faults.spec import FaultPlan
from repro.telemetry.bus import EventBus, attach_telemetry
from repro.trace.container import Trace


def run_trace(
    cache,
    trace: Trace,
    line_bytes: int = 64,
    warmup_refs: int = 0,
    telemetry: EventBus | None = None,
    audit_every: int | None = None,
    faults: FaultPlan | None = None,
):
    """Stream ``trace`` through ``cache``; returns the cache's stats object.

    ``warmup_refs`` leading references are simulated but excluded from the
    returned statistics (the cache's counters are reset at that point).

    ``telemetry`` attaches an :class:`~repro.telemetry.bus.EventBus` for
    the duration of the run (caches without telemetry support ignore it);
    the tail epoch is flushed before returning, but the bus is left open —
    the caller owns its lifecycle.

    ``audit_every`` runs the full-state invariant auditor
    (:func:`repro.audit.invariants.audit_and_emit`) every that many
    references, plus once at the end of the run; ``None`` consults the
    ``$REPRO_AUDIT`` environment variable, and 0 disables auditing — in
    which case the access stream is issued exactly as before (one
    ``access_many`` call per segment; ``benchmarks/`` guards the
    zero-overhead contract).

    ``faults`` schedules a :class:`~repro.faults.spec.FaultPlan` against
    the run: a spec with ``at=N`` fires after ``N`` references of the
    *whole run* have been issued (warm-up included — fault time is wall
    time, not measurement time), before the N+1st; specs at or past the
    trace length never fire. With no plan the access stream is issued
    exactly as before (the same zero-overhead contract as auditing).
    """
    if warmup_refs < 0:
        raise ConfigError("warmup_refs cannot be negative")
    if len(trace) > 0 and warmup_refs >= len(trace):
        raise ConfigError(
            f"warmup_refs ({warmup_refs}) must be smaller than the trace "
            f"length ({len(trace)}); nothing would be measured"
        )
    cadence = resolve_cadence(audit_every)
    injector = None
    if faults:
        if not hasattr(cache, "regions"):
            raise ConfigError(
                "fault injection requires a molecular cache, got "
                f"{type(cache).__name__}"
            )
        injector = FaultInjector(cache, faults)
    attach_telemetry(cache, telemetry)
    access_many = getattr(cache, "access_many", None)
    if access_many is not None:
        # Columns stay ndarrays on the batched path: the columnar kernels
        # consume them without per-element conversion, and slicing below
        # only takes views.
        blocks = trace.block_column(line_bytes)
        asids = trace.asids
        writes = trace.writes
    else:
        blocks = trace.block_list(line_bytes)
        asids = trace.asid_list()
        writes = trace.write_list()
    if access_many is not None:
        # Batched fast path: stream the warm-up prefix, reset, stream the
        # rest. Stats/telemetry are byte-identical to the scalar loop
        # below (tests/test_prop_batched.py holds the two to it); the
        # audit cadence only chunks the calls, it never reorders accesses.
        def stream(lo: int, hi: int) -> None:
            if not cadence:
                access_many(blocks[lo:hi], asids[lo:hi], writes[lo:hi])
                return
            for start in range(lo, hi, cadence):
                stop = min(start + cadence, hi)
                access_many(
                    blocks[start:stop], asids[start:stop], writes[start:stop]
                )
                audit_and_emit(cache)

        if injector is not None:
            # Fault-aware wrapper: split the stream at fault firing
            # points so each due fault lands between the same two
            # references the scalar loop would put it between.
            plain_stream = stream

            def stream(lo: int, hi: int) -> None:
                pos = lo
                while pos < hi:
                    injector.fire_due(pos)
                    next_at = injector.next_at
                    stop = hi if next_at is None else min(hi, max(next_at, pos + 1))
                    plain_stream(pos, stop)
                    pos = stop

        if warmup_refs:
            stream(0, warmup_refs)
            cache.stats.reset()
            stream(warmup_refs, len(blocks))
        else:
            stream(0, len(blocks))
    else:
        access_block = cache.access_block
        for index, (block, asid, write) in enumerate(zip(blocks, asids, writes)):
            if index == warmup_refs and warmup_refs:
                cache.stats.reset()
            if injector is not None:
                injector.fire_due(index)
            access_block(block, asid, write)
            if cadence and (index + 1) % cadence == 0:
                audit_and_emit(cache)
    if cadence:
        audit_and_emit(cache)
    if telemetry is not None:
        telemetry.flush_epoch()
    return cache.stats
