"""CMP execution model: cores issuing their traces against a shared cache.

The paper gathers its traces on SESC, a cycle-level CMP simulator, where a
core that misses in the shared L2 *stalls* while the line is fetched. That
feedback matters: a capacity-starved application (mcf) issues references
more slowly than a cache-friendly one, and therefore pollutes the shared
cache far less than a rate-equal interleaving would suggest. Table 1's
pattern (art survives a pair with mcf but collapses with three co-runners)
only emerges with this throttling.

:class:`CMPRunner` reproduces the effect with a simple timing model:

* each core issues its next reference one time unit after the previous one
  *hits*, or ``1 + miss_penalty`` units after a *miss*;
* the shared cache services references in global time order;
* the run ends when the first core exhausts its trace (all applications are
  co-running for the entire measured window);
* per-application miss rates are measured from a post-warm-up snapshot
  (``warmup_refs`` total references) to exclude cold-start effects that the
  paper's 3.9 M-reference traces amortise away.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.audit.invariants import resolve_cadence
from repro.caches.stats import AsidCounters
from repro.common.errors import ConfigError
from repro.faults.spec import FaultPlan
from repro.telemetry.bus import EventBus, attach_telemetry
from repro.trace.container import Trace


@dataclass(frozen=True, slots=True)
class CMPRunConfig:
    """Timing parameters for a CMP run.

    ``miss_penalty`` is the stall, in units of the inter-reference gap of a
    hitting core, that a shared-cache miss inflicts on its core. 10 is a
    reasonable ratio of memory latency to the mean time between post-L1
    references of a well-cached application.

    ``audit_every`` runs the full-state invariant auditor every that many
    issued references (``None`` consults ``$REPRO_AUDIT``; 0 disables —
    the access closure is then exactly the un-audited one).

    ``faults`` schedules a :class:`~repro.faults.spec.FaultPlan` against
    the run; a spec's ``at`` counts *globally issued* references (the
    interleaved stream, not any one core's). ``None``/empty leaves the
    access closure exactly as before.
    """

    miss_penalty: float = 10.0
    warmup_refs: int = 100_000
    audit_every: int | None = None
    faults: FaultPlan | None = None

    def __post_init__(self) -> None:
        if self.miss_penalty < 0:
            raise ConfigError("miss penalty cannot be negative")
        if self.warmup_refs < 0:
            raise ConfigError("warmup_refs cannot be negative")
        if self.audit_every is not None and self.audit_every < 0:
            raise ConfigError("audit_every cannot be negative")


@dataclass(slots=True)
class CMPRunResult:
    """Measured (post-warm-up) statistics of one CMP run."""

    per_asid: dict[int, AsidCounters] = field(default_factory=dict)
    total_refs: int = 0
    measured_refs: int = 0
    end_time: float = 0.0

    def miss_rate(self, asid: int) -> float:
        counters = self.per_asid.get(asid)
        if counters is None or counters.accesses == 0:
            return 0.0
        return counters.miss_rate

    def overall_miss_rate(self) -> float:
        accesses = sum(c.accesses for c in self.per_asid.values())
        misses = sum(c.misses for c in self.per_asid.values())
        return misses / accesses if accesses else 0.0

    def miss_rates(self) -> dict[int, float]:
        return {asid: c.miss_rate for asid, c in sorted(self.per_asid.items())}


class CMPRunner:
    """Run several applications concurrently against one shared cache.

    The cache may be a :class:`~repro.caches.SetAssociativeCache`, a
    :class:`~repro.molecular.MolecularCache`, or anything else exposing
    ``access_block(block, asid, write) -> AccessResult`` and a ``stats``
    attribute with ``per_asid`` counters.
    """

    def __init__(
        self,
        cache,
        config: CMPRunConfig | None = None,
        telemetry: EventBus | None = None,
    ) -> None:
        self.cache = cache
        self.config = config or CMPRunConfig()
        #: Optional event bus attached to the cache at run start (ignored
        #: by caches without telemetry support). The runner flushes the
        #: tail epoch after the run; closing the bus is the caller's job.
        self.telemetry = telemetry

    def run(self, traces: dict[int, Trace], line_bytes: int = 64) -> CMPRunResult:
        """Execute the traces concurrently; returns post-warm-up statistics.

        ``traces`` maps each application's ASID to its (private) trace.
        """
        if not traces:
            raise ConfigError("CMPRunner.run needs at least one trace")
        attach_telemetry(self.cache, self.telemetry)
        streams = {}
        for asid, trace in traces.items():
            if len(trace) == 0:
                raise ConfigError(f"trace for asid {asid} is empty")
            streams[asid] = (
                trace.block_list(line_bytes),
                trace.write_list(),
            )
        penalty = self.config.miss_penalty
        cache = self.cache
        session_factory = getattr(cache, "access_session", None)
        if session_factory is not None:
            # Allocation-free per-access path: same stats/telemetry as
            # access_block, returns a bare hit flag for the timing loop.
            access = session_factory().access
        else:
            access_block = cache.access_block

            def access(block: int, asid: int, write: bool) -> bool:
                return access_block(block, asid, write).hit

        if self.config.faults:
            if not hasattr(cache, "regions"):
                raise ConfigError(
                    "fault injection requires a molecular cache, got "
                    f"{type(cache).__name__}"
                )
            from repro.faults.injector import FaultInjector

            injector = FaultInjector(cache, self.config.faults)
            fault_inner = access
            fault_issued = [0]

            def access(block: int, asid: int, write: bool) -> bool:
                injector.fire_due(fault_issued[0])
                fault_issued[0] += 1
                return fault_inner(block, asid, write)

        cadence = resolve_cadence(self.config.audit_every)
        if cadence:
            # Wrap (rather than branch in the hot loop) so a disabled
            # audit leaves the access path untouched.
            from repro.audit.invariants import audit_and_emit

            inner_access = access
            audit_countdown = [cadence]

            def access(block: int, asid: int, write: bool) -> bool:
                hit = inner_access(block, asid, write)
                audit_countdown[0] -= 1
                if audit_countdown[0] <= 0:
                    audit_countdown[0] = cadence
                    audit_and_emit(cache)
                return hit

        # (time, tiebreak, asid, index) — the tiebreak keeps ordering
        # deterministic and avoids comparing beyond the asid.
        heap: list[tuple[float, int, int, int]] = [
            (0.0, asid, asid, 0) for asid in sorted(streams)
        ]
        heapq.heapify(heap)

        issued = 0
        snapshot: dict[int, AsidCounters] | None = None
        warmup = self.config.warmup_refs
        end_time = 0.0
        push = heapq.heappush
        pop = heapq.heappop

        while True:
            time_now, tiebreak, asid, index = pop(heap)
            blocks, writes = streams[asid]
            hit = access(blocks[index], asid, writes[index])
            issued += 1
            index += 1
            if snapshot is None and warmup and issued >= warmup:
                snapshot = {
                    a: c.copy() for a, c in cache.stats.per_asid.items()
                }
            if index >= len(blocks):
                end_time = time_now
                break
            gap = 1.0 if hit else 1.0 + penalty
            push(heap, (time_now + gap, tiebreak, asid, index))

        if self.telemetry is not None:
            self.telemetry.flush_epoch()
        return self._collect(snapshot, issued, end_time)

    def _collect(
        self,
        snapshot: dict[int, AsidCounters] | None,
        issued: int,
        end_time: float,
    ) -> CMPRunResult:
        result = CMPRunResult(total_refs=issued, end_time=end_time)
        measured = 0
        for asid, counters in self.cache.stats.per_asid.items():
            base = (snapshot or {}).get(asid)
            net = counters.copy()
            if base is not None:
                net.accesses -= base.accesses
                net.hits -= base.hits
                net.evictions -= base.evictions
                net.writebacks -= base.writebacks
            if net.accesses > 0:
                result.per_asid[asid] = net
                measured += net.accesses
        result.measured_refs = measured
        return result
