"""Global experiment scaling.

The paper's traces hold ~3.9 M references; a pure-Python simulator wants
something smaller by default. Every experiment harness multiplies its
reference counts by ``REPRO_SCALE`` (a float environment variable,
default 1.0), so::

    REPRO_SCALE=0.25 pytest benchmarks/   # quick look
    REPRO_SCALE=4    pytest benchmarks/   # paper-scale statistics
"""

from __future__ import annotations

import os

from repro.common.errors import ConfigError

_ENV_VAR = "REPRO_SCALE"


def scale_factor() -> float:
    """The current global scale factor (validated)."""
    raw = os.environ.get(_ENV_VAR, "")
    if not raw:
        return 1.0
    try:
        value = float(raw)
    except ValueError:
        raise ConfigError(f"{_ENV_VAR}={raw!r} is not a number") from None
    if value <= 0:
        raise ConfigError(f"{_ENV_VAR} must be positive, got {value}")
    return value


def scaled(refs: int, minimum: int = 10_000) -> int:
    """``refs`` adjusted by the global scale factor (floored)."""
    return max(minimum, int(refs * scale_factor()))
