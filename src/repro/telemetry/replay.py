"""Replay recorded telemetry and build the ``repro inspect`` report.

A recorded JSONL stream is self-contained: the
:class:`~repro.telemetry.events.EpochRollover` events carry the per-region
metric snapshots and the resize events carry Algorithm 1's decisions, so
this module can rebuild the run's timelines without the cache (or even the
workload) that produced them.

:func:`load_report` parses a file into an :class:`InspectReport`;
``report.format()`` renders the resize timeline, the per-region epoch
tables (miss rate, molecules, occupancy, hits-per-molecule) and a summary
with resize oscillation counts, time-to-goal epochs and peak/mean
occupancy per region.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.telemetry.events import (
    AccessSampled,
    JobQuarantined,
    LeaseAcquired,
    LeaseExpired,
    MoleculeGranted,
    MoleculeRemapped,
    MoleculeWithdrawn,
    RemoteSearch,
    ResizeDecision,
    RunMeta,
    TelemetryEvent,
    TenantEpochSnapshot,
    TenantRunSummary,
)
from repro.telemetry.sinks import read_events
from repro.telemetry.timeline import MetricsTimeline


@dataclass(slots=True)
class InspectReport:
    """Everything ``repro inspect`` derives from one recorded stream."""

    source: str = ""
    meta: RunMeta | None = None
    timeline: MetricsTimeline = field(default_factory=MetricsTimeline)
    decisions: list[ResizeDecision] = field(default_factory=list)
    grants: list[MoleculeGranted] = field(default_factory=list)
    withdrawals: list[MoleculeWithdrawn] = field(default_factory=list)
    remaps: list[MoleculeRemapped] = field(default_factory=list)
    access_samples: int = 0
    remote_searches: int = 0
    total_events: int = 0
    tenant_epochs: list[TenantEpochSnapshot] = field(default_factory=list)
    tenant_summary: TenantRunSummary | None = None
    lease_events: list[LeaseAcquired | LeaseExpired] = field(
        default_factory=list
    )
    quarantines: list[JobQuarantined] = field(default_factory=list)

    # ------------------------------------------------------------ ingestion

    def consume(self, event: TelemetryEvent) -> None:
        """Route one replayed event into the report's accumulators."""
        self.total_events += 1
        if isinstance(event, RunMeta):
            self.meta = event
        elif isinstance(event, ResizeDecision):
            self.decisions.append(event)
        elif isinstance(event, MoleculeGranted):
            self.grants.append(event)
        elif isinstance(event, MoleculeWithdrawn):
            self.withdrawals.append(event)
        elif isinstance(event, MoleculeRemapped):
            self.remaps.append(event)
        elif isinstance(event, AccessSampled):
            self.access_samples += 1
        elif isinstance(event, RemoteSearch):
            self.remote_searches += 1
        elif isinstance(event, TenantEpochSnapshot):
            self.tenant_epochs.append(event)
        elif isinstance(event, TenantRunSummary):
            self.tenant_summary = event
        elif isinstance(event, (LeaseAcquired, LeaseExpired)):
            self.lease_events.append(event)
        elif isinstance(event, JobQuarantined):
            self.quarantines.append(event)
        else:
            self.timeline.emit(event)

    # ------------------------------------------------------------- analysis

    def asids(self) -> list[int]:
        seen = set(self.timeline.asids())
        seen.update(d.asid for d in self.decisions)
        if self.meta is not None:
            seen.update(self.meta.regions)
        return sorted(seen)

    def oscillations(self, asid: int) -> int:
        """Grow→withdraw (or back) direction flips in the decision stream.

        A well-converging region settles into ``hold``; a region whose goal
        sits on a capacity cliff alternates grants and withdrawals — the
        oscillation count makes that pathology visible at a glance.
        """
        directions = [
            d.action
            for d in self.decisions
            if d.asid == asid and d.action in ("grow", "withdraw")
        ]
        return sum(
            1
            for previous, current in zip(directions, directions[1:])
            if previous != current
        )

    def goal_of(self, asid: int) -> float | None:
        if self.meta is not None:
            region = self.meta.regions.get(asid)
            if region is not None:
                return region.get("goal")
        for epoch in self.timeline.epochs:
            snapshot = epoch.regions.get(asid)
            if snapshot is not None:
                return snapshot.get("goal")
        return None

    # ------------------------------------------------------------ rendering

    def header(self) -> str:
        lines = [f"telemetry replay: {self.source or '<stream>'}"]
        if self.meta is not None:
            meta = self.meta
            lines.append(
                f"cache: {meta.total_bytes >> 20}MB molecular, "
                f"{meta.clusters} cluster(s), {meta.tiles} tiles, "
                f"{meta.molecules_per_tile} molecules/tile"
            )
            for asid, region in sorted(meta.regions.items()):
                goal = region.get("goal")
                goal_text = "unmanaged" if goal is None else f"goal {goal:.2f}"
                lines.append(
                    f"  region asid={asid}: {goal_text}, "
                    f"home tile {region.get('home_tile')}, "
                    f"{region.get('molecules')} initial molecules, "
                    f"line x{region.get('line_multiplier', 1)}"
                )
        lines.append(
            f"events: {self.total_events} "
            f"({len(self.timeline)} epochs, {len(self.decisions)} resize "
            f"decisions, {len(self.grants)} grants, "
            f"{len(self.withdrawals)} withdrawals, "
            f"{len(self.remaps)} remaps, "
            f"{self.remote_searches} remote searches, "
            f"{self.access_samples} access samples)"
        )
        if self.lease_events or self.quarantines:
            acquisitions = sum(
                1 for e in self.lease_events if isinstance(e, LeaseAcquired)
            )
            expiries = sum(
                1 for e in self.lease_events if isinstance(e, LeaseExpired)
            )
            lines.append(
                f"leases: {acquisitions} acquisition(s), {expiries} "
                f"expir(y/ies), {len(self.quarantines)} job(s) quarantined"
            )
        return "\n".join(lines)

    def resize_table(self, max_rows: int | None = None) -> str:
        from repro.sim.report import format_table

        rows = []
        decisions = (
            self.decisions if max_rows is None else self.decisions[:max_rows]
        )
        for decision in decisions:
            rows.append(
                [
                    decision.accesses,
                    decision.asid,
                    decision.action,
                    decision.amount,
                    decision.window_miss_rate,
                    decision.molecules,
                    decision.period,
                ]
            )
        table = format_table(
            ["accesses", "asid", "action", "amount", "window_miss",
             "molecules", "period"],
            rows,
            title="Resize timeline (Algorithm 1 decisions)",
        )
        if max_rows is not None and len(self.decisions) > max_rows:
            table += f"\n... {len(self.decisions) - max_rows} more decisions"
        return table

    def remap_table(self, max_rows: int | None = None) -> str:
        from repro.sim.report import format_table

        remaps = self.remaps if max_rows is None else self.remaps[:max_rows]
        rows = [
            [
                remap.accesses,
                remap.asid,
                remap.action,
                remap.count,
                remap.moved,
                remap.spilled,
                remap.molecules,
            ]
            for remap in remaps
        ]
        table = format_table(
            ["accesses", "asid", "action", "count", "moved", "spilled",
             "molecules"],
            rows,
            title="Consistent-hash remaps (chash resize backend)",
        )
        if max_rows is not None and len(self.remaps) > max_rows:
            table += f"\n... {len(self.remaps) - max_rows} more remaps"
        return table

    def summary_table(self) -> str:
        from repro.sim.report import format_table

        timeline = self.timeline
        rows = []
        for asid in self.asids():
            grants = sum(g.count for g in self.grants if g.asid == asid)
            withdrawn = sum(
                w.count for w in self.withdrawals if w.asid == asid
            )
            goal = self.goal_of(asid)
            time_to_goal = timeline.time_to_goal(asid)
            molecules = [
                v for v in timeline.series(asid, "molecules") if v is not None
            ]
            rows.append(
                [
                    asid,
                    "-" if goal is None else f"{goal:.2f}",
                    grants,
                    withdrawn,
                    self.oscillations(asid),
                    "-" if time_to_goal is None else time_to_goal,
                    timeline.peak(asid, "occupancy"),
                    timeline.mean(asid, "occupancy"),
                    int(molecules[-1]) if molecules else "-",
                    timeline.mean(asid, "miss_rate"),
                ]
            )
        return format_table(
            ["asid", "goal", "granted", "withdrawn", "oscillations",
             "goal@epoch", "peak occ", "mean occ", "final mol", "mean miss"],
            rows,
            title="Per-region summary",
        )

    def lease_table(self, max_rows: int | None = None) -> str:
        """The distributed drain's lease timeline, interleaved by wall clock.

        Lease events are the only ones stamped with wall-clock ``at``
        (workers record independent streams); sorting on it rebuilds one
        coherent campaign timeline from any merge order.
        """
        from repro.sim.report import format_table

        events = sorted(self.lease_events, key=lambda e: e.at)
        origin = events[0].at if events else 0.0
        shown = events if max_rows is None else events[:max_rows]
        rows = []
        for event in shown:
            if isinstance(event, LeaseAcquired):
                rows.append(
                    [
                        f"{event.at - origin:.2f}",
                        event.job[:12],
                        "reclaim" if event.reclaimed else "acquire",
                        event.owner,
                        event.token,
                        "",
                    ]
                )
            else:
                rows.append(
                    [
                        f"{event.at - origin:.2f}",
                        event.job[:12],
                        "expired",
                        event.owner,
                        event.token,
                        f"stale {event.age:.1f}s, noticed by {event.by}",
                    ]
                )
        table = format_table(
            ["t(s)", "job", "event", "owner", "token", "detail"],
            rows,
            title="Lease timeline (distributed drain)",
        )
        if max_rows is not None and len(events) > max_rows:
            table += f"\n... {len(events) - max_rows} more lease events"
        return table

    def quarantine_section(self) -> str:
        from repro.sim.report import format_table

        rows = [
            [
                event.job[:12],
                event.attempts,
                ", ".join(event.owners),
            ]
            for event in sorted(self.quarantines, key=lambda e: e.at)
        ]
        table = format_table(
            ["job", "attempts", "owners (oldest first)"],
            rows,
            title="Quarantined jobs (poison: reclaim budget exhausted)",
        )
        return (
            table
            + "\nthese jobs have no stored result; the campaign completed "
            "degraded. Inspect quarantine/<hash>.json in the store, fix "
            "the cause, delete the file(s) and re-run."
        )

    def tenancy_epoch_table(self, max_rows: int | None = None) -> str:
        from repro.sim.report import format_table

        epochs = (
            self.tenant_epochs
            if max_rows is None
            else self.tenant_epochs[:max_rows]
        )
        rows = [
            [
                snap.epoch,
                snap.policy,
                snap.aggregate_hit_rate,
                snap.jain,
                snap.moved,
                snap.free,
                snap.violations,
            ]
            for snap in epochs
        ]
        table = format_table(
            ["epoch", "policy", "hit rate", "jain", "moved", "free",
             "violations"],
            rows,
            title="Tenancy epochs (cache service)",
        )
        if max_rows is not None and len(self.tenant_epochs) > max_rows:
            table += f"\n... {len(self.tenant_epochs) - max_rows} more epochs"
        return table

    def tenancy_summary_section(self) -> str:
        from repro.sim.report import format_table

        summary = self.tenant_summary
        lines = [
            "Tenancy run summary",
            f"  policy {summary.policy}: {summary.tenants} tenants over "
            f"{summary.epochs} epochs, aggregate hit rate "
            f"{summary.aggregate_hit_rate:.4f}, mean Jain fairness "
            f"{summary.mean_jain:.4f}, {summary.moved_blocks} blocks "
            f"reallocated",
        ]
        if summary.sla_tracked:
            lines.append(
                f"  SLA: {summary.sla_violations} tenant-epoch violations "
                f"across {summary.sla_violation_epochs} epoch(s)"
            )
        else:
            lines.append("  SLA: not tracked (accounting disabled or no goal)")
        if summary.worst:
            rows = [
                [tenant, entry.get("hr"), entry.get("acc"), entry.get("alloc")]
                for tenant, entry in sorted(summary.worst.items())
            ]
            lines.append("")
            lines.append(
                format_table(
                    ["tenant", "hit rate", "accesses", "final alloc"],
                    rows,
                    title="Worst-served tenants",
                )
            )
        if summary.hrc:
            rows = []
            for tenant, points in sorted(summary.hrc.items()):
                curve = ", ".join(
                    f"{int(blocks)}:{rate:.2f}" for blocks, rate in points
                )
                rows.append([tenant, curve])
            lines.append("")
            lines.append(
                format_table(
                    ["tenant", "est. hit rate by capacity (blocks:rate)"],
                    rows,
                    title="Sampled hit-rate curves (busiest tenants)",
                )
            )
        return "\n".join(lines)

    def format(self, max_rows: int | None = None) -> str:
        """The full ``repro inspect`` report."""
        sections = [self.header()]
        if self.decisions:
            sections.append(self.resize_table(max_rows=max_rows))
        if self.remaps:
            sections.append(self.remap_table(max_rows=max_rows))
        if len(self.timeline):
            for metric, title in (
                ("miss_rate", "Per-region miss rate by epoch"),
                ("molecules", "Per-region molecule count by epoch"),
                ("occupancy", "Per-region occupancy by epoch"),
                ("hpm", "Per-region hits-per-molecule by epoch (Figure 6)"),
            ):
                sections.append(
                    self.timeline.metric_table(
                        metric, title=title, max_rows=max_rows
                    )
                )
        elif (
            not self.tenant_epochs
            and self.tenant_summary is None
            and not self.lease_events
            and not self.quarantines
        ):
            sections.append(
                "no epoch rollovers recorded — was the bus created with "
                "epoch_refs=0, or never closed?"
            )
        if self.lease_events:
            sections.append(self.lease_table(max_rows=max_rows))
        if self.quarantines:
            sections.append(self.quarantine_section())
        if self.tenant_epochs:
            sections.append(self.tenancy_epoch_table(max_rows=max_rows))
        if self.tenant_summary is not None:
            sections.append(self.tenancy_summary_section())
        if self.asids():
            sections.append(self.summary_table())
        return "\n\n".join(sections)


def replay_events(events, source: str = "") -> InspectReport:
    """Build an :class:`InspectReport` from an iterable of events."""
    report = InspectReport(source=source)
    for event in events:
        report.consume(event)
    return report


def load_report(path: str | Path) -> InspectReport:
    """Read a recorded JSONL file into an :class:`InspectReport`."""
    return replay_events(read_events(path), source=str(path))
