"""Typed structured events for the telemetry subsystem.

Every event is a frozen, slotted dataclass with a ``kind`` discriminator so
a recorded stream can be serialised to JSONL (:class:`~repro.telemetry.sinks.
JsonlSink`) and replayed later (:mod:`repro.telemetry.replay`) without any
schema negotiation: one JSON object per line, ``kind`` selects the class.

The event vocabulary mirrors the paper's observable dynamics:

* :class:`AccessSampled` — every Nth reference through the access path
  (block, hit/miss, probe counts), for spot-checking behaviour.
* :class:`RemoteSearch` — a hierarchical Ulmo search left the home tile
  (paper section 3.3); high-volume, so the bus can subsample it.
* :class:`ResizeDecision` — one Algorithm-1 evaluation for one region:
  the branch taken (``grow`` / ``withdraw`` / ``grow-denied`` / ``hold``)
  with the window miss rate it saw.
* :class:`MoleculeGranted` / :class:`MoleculeWithdrawn` — the resize
  engine actually moved capacity (Figure 6's step changes).
* :class:`MoleculeRemapped` — the consistent-hashing mechanism
  (:mod:`repro.molecular.chash`) migrated resident blocks between
  molecules during a resize instead of flushing them.
* :class:`EpochRollover` — a periodic snapshot of every region's epoch
  miss rate, molecule count, occupancy and hits-per-molecule; the raw
  material of the paper's time-resolved plots.
* :class:`RunMeta` — a stream header describing the cache and its regions.
* :class:`JobSubmitted` / :class:`JobStarted` / :class:`JobRetried` /
  :class:`JobCompleted` — campaign lifecycle (:mod:`repro.campaign`):
  one sweep job scheduled, handed to a worker, transiently failed, and
  made durable in the result store.
* :class:`FaultInjected` / :class:`MoleculeRetired` /
  :class:`RegionRepaired` — the fault-injection subsystem
  (:mod:`repro.faults`): a scheduled fault fired, a molecule was retired
  by a hard fault, and the resize engine replaced retired capacity.
* :class:`TenantEpochSnapshot` / :class:`TenantRunSummary` — the
  multi-tenant cache service (:mod:`repro.tenants`): one epoch boundary
  (fairness, reallocation churn, busiest tenants) and the end-of-run
  rollup (per-tenant hit rates, SLA violations, hit-rate curves).
* :class:`ChaosInjected` / :class:`CampaignInterrupted` — harness-level
  chaos (worker crash/hang/corruption) and a campaign stopped by
  SIGINT/SIGTERM with its completed results persisted.
* :class:`LeaseAcquired` / :class:`LeaseExpired` / :class:`JobQuarantined`
  — the distributed lease protocol (:mod:`repro.campaign.lease`): a
  worker claimed (or reclaimed) a job, a dead worker's lease aged out
  and was taken over, and a poison job was parked after exhausting its
  reclaim budget. These carry a wall-clock ``at`` stamp — unlike every
  other event — because they come from *independent processes* whose
  streams ``repro inspect`` must interleave by time.

This module depends only on the standard library so instrumented code
(`molecular/cache.py`, `molecular/resize.py`) can import it without
dragging in the sim layer.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, ClassVar


@dataclass(frozen=True, slots=True)
class TelemetryEvent:
    """Base class: ``kind`` discriminator + dict/JSON round-tripping."""

    kind: ClassVar[str] = ""

    def as_dict(self) -> dict[str, Any]:
        """Plain-dict form with the ``kind`` discriminator first."""
        payload: dict[str, Any] = {"kind": self.kind}
        payload.update(asdict(self))
        return payload

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "TelemetryEvent":
        """Rebuild an event from a decoded JSON object (sans ``kind``)."""
        return cls(**payload)


@dataclass(frozen=True, slots=True)
class RunMeta(TelemetryEvent):
    """Stream header: the cache geometry and its regions at attach time."""

    kind: ClassVar[str] = "run_meta"

    total_bytes: int
    clusters: int
    tiles: int
    molecules_per_tile: int
    lines_per_molecule: int
    #: asid -> {"goal", "home_tile", "molecules", "line_multiplier"}
    regions: dict[int, dict[str, Any]]

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "RunMeta":
        payload = dict(payload)
        payload["regions"] = _int_keys(payload.get("regions", {}))
        return cls(**payload)


@dataclass(frozen=True, slots=True)
class AccessSampled(TelemetryEvent):
    """Every Nth reference through the molecular access path."""

    kind: ClassVar[str] = "access_sampled"

    seq: int
    asid: int
    block: int
    hit: bool
    write: bool
    local_probes: int
    remote_probes: int


@dataclass(frozen=True, slots=True)
class RemoteSearch(TelemetryEvent):
    """An access escalated past the home tile into Ulmo's search."""

    kind: ClassVar[str] = "remote_search"

    seq: int
    asid: int
    tiles_searched: int
    molecules_probed: int
    found: bool


@dataclass(frozen=True, slots=True)
class ResizeDecision(TelemetryEvent):
    """One Algorithm-1 evaluation for one region.

    ``action`` is the branch taken: ``grow``, ``withdraw``, ``grow-denied``
    (the allocator had no free molecules), ``withdraw-denied`` (the floor
    or the placement policy refused every withdrawal) or ``hold`` (no
    capacity change). ``period`` is the resize period in effect when the
    decision fired.
    """

    kind: ClassVar[str] = "resize_decision"

    accesses: int
    asid: int
    action: str
    amount: int
    window_miss_rate: float
    molecules: int
    period: int


@dataclass(frozen=True, slots=True)
class MoleculeGranted(TelemetryEvent):
    """The resize engine granted molecules to a region."""

    kind: ClassVar[str] = "molecule_granted"

    accesses: int
    asid: int
    count: int
    tiles: list[int]
    molecules: int


@dataclass(frozen=True, slots=True)
class MoleculeWithdrawn(TelemetryEvent):
    """The resize engine withdrew (and flushed) molecules from a region."""

    kind: ClassVar[str] = "molecule_withdrawn"

    accesses: int
    asid: int
    count: int
    writebacks: int
    molecules: int


@dataclass(frozen=True, slots=True)
class MoleculeRemapped(TelemetryEvent):
    """The chash mechanism migrated resident blocks during a resize.

    ``action`` is the capacity change that triggered the remap (``grow``,
    ``withdraw`` or ``repair``), ``count`` the molecules added or removed,
    ``moved`` the resident blocks migrated into their new ring owners,
    ``spilled`` the dirty lines written back because no survivor had a
    free slot, and ``molecules`` the region size after the change.
    """

    kind: ClassVar[str] = "molecule_remapped"

    accesses: int
    asid: int
    action: str
    count: int
    moved: int
    spilled: int
    molecules: int


@dataclass(frozen=True, slots=True)
class EpochRollover(TelemetryEvent):
    """Periodic per-region metric snapshot (the timeline's data points).

    ``regions`` maps each ASID to its metrics over the epoch just ended:
    ``accesses``, ``miss_rate`` (epoch-local, not cumulative),
    ``molecules`` (at the boundary), ``occupancy`` (valid-line fraction),
    ``goal`` and ``hpm`` (epoch hit rate / molecule count — the paper's
    Figure 6 metric, epoch-resolved).
    """

    kind: ClassVar[str] = "epoch_rollover"

    epoch: int
    seq: int
    mean_molecules_probed: float
    free_molecules: int
    regions: dict[int, dict[str, Any]]

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "EpochRollover":
        payload = dict(payload)
        payload["regions"] = _int_keys(payload.get("regions", {}))
        return cls(**payload)


@dataclass(frozen=True, slots=True)
class AuditReport(TelemetryEvent):
    """One full-state invariant audit (:mod:`repro.audit.invariants`).

    Emitted by drivers running with an audit cadence; ``violations``
    holds the rendered ``[slug] message`` strings (empty when ``ok``).
    """

    kind: ClassVar[str] = "audit_report"

    accesses: int
    checks: int
    ok: bool
    violations: list[str]


@dataclass(frozen=True, slots=True)
class JobSubmitted(TelemetryEvent):
    """A campaign job entered the schedule (before any execution)."""

    kind: ClassVar[str] = "job_submitted"

    campaign: str
    job: str  # the spec's content hash
    experiment: str
    index: int


@dataclass(frozen=True, slots=True)
class JobStarted(TelemetryEvent):
    """A campaign job was handed to a worker (or the serial loop)."""

    kind: ClassVar[str] = "job_started"

    campaign: str
    job: str
    index: int
    attempt: int


@dataclass(frozen=True, slots=True)
class JobRetried(TelemetryEvent):
    """A campaign job failed transiently and will run again."""

    kind: ClassVar[str] = "job_retried"

    campaign: str
    job: str
    index: int
    attempt: int  # the attempt about to run
    error: str


@dataclass(frozen=True, slots=True)
class JobCompleted(TelemetryEvent):
    """A campaign job's result is durable in the store.

    ``cached`` marks jobs satisfied straight from a previous campaign's
    stored result (resume / identical re-run) — no execution happened.
    """

    kind: ClassVar[str] = "job_completed"

    campaign: str
    job: str
    index: int
    attempts: int
    elapsed: float
    cached: bool


@dataclass(frozen=True, slots=True)
class FaultInjected(TelemetryEvent):
    """A scheduled fault fired (:mod:`repro.faults`).

    ``fault`` is the spec kind (``hard`` / ``transient`` / ``degraded``),
    ``target`` the molecule or tile id, ``applied`` whether the fault had
    any effect (a hard fault on an already-retired molecule, or a
    transient fault on an empty molecule, is a no-op) and ``detail`` a
    short human-readable note (e.g. the block a transient fault dropped).
    """

    kind: ClassVar[str] = "fault_injected"

    accesses: int
    fault: str
    target: int
    applied: bool
    detail: str


@dataclass(frozen=True, slots=True)
class MoleculeRetired(TelemetryEvent):
    """A hard fault permanently removed a molecule from service."""

    kind: ClassVar[str] = "molecule_retired"

    accesses: int
    molecule: int
    tile: int
    asid: int  # owner at retirement time (FREE for a free-pool molecule)
    shared: bool
    writebacks: int
    molecules: int  # owning region's size after retirement (0 if free)


@dataclass(frozen=True, slots=True)
class RegionRepaired(TelemetryEvent):
    """The resize engine replaced capacity lost to hard faults."""

    kind: ClassVar[str] = "region_repaired"

    accesses: int
    asid: int
    requested: int
    granted: int
    tiles: list[int]
    molecules: int


@dataclass(frozen=True, slots=True)
class TenantEpochSnapshot(TelemetryEvent):
    """One cache-service epoch boundary (:mod:`repro.tenants.service`).

    ``tenants`` maps the epoch's busiest tenant ids (capped) to
    ``{"alloc", "occ", "acc", "hr"}`` — post-rebalance allocation,
    occupancy, epoch accesses and epoch hit rate.
    """

    kind: ClassVar[str] = "tenant_epoch"

    epoch: int
    policy: str
    capacity: int
    free: int
    moved: int
    aggregate_hit_rate: float
    jain: float
    violations: int
    tenants: dict[int, dict[str, Any]]

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "TenantEpochSnapshot":
        payload = dict(payload)
        payload["tenants"] = _int_keys(payload.get("tenants", {}))
        return cls(**payload)


@dataclass(frozen=True, slots=True)
class TenantRunSummary(TelemetryEvent):
    """End-of-run rollup for a cache-service tenancy run.

    ``worst`` maps the lowest-hit-rate tenants to ``{"hr", "acc",
    "alloc"}``; ``hrc`` maps the busiest tenants to their sampled
    hit-rate curves as ``[capacity_blocks, est_hit_rate]`` pairs.
    """

    kind: ClassVar[str] = "tenant_summary"

    policy: str
    epochs: int
    tenants: int
    aggregate_hit_rate: float
    mean_jain: float
    moved_blocks: int
    sla_tracked: bool
    sla_violations: int
    sla_violation_epochs: int
    worst: dict[int, dict[str, Any]]
    hrc: dict[int, list]

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "TenantRunSummary":
        payload = dict(payload)
        payload["worst"] = _int_keys(payload.get("worst", {}))
        payload["hrc"] = _int_keys(payload.get("hrc", {}))
        return cls(**payload)


@dataclass(frozen=True, slots=True)
class ChaosInjected(TelemetryEvent):
    """The campaign chaos policy sabotaged one job's execution."""

    kind: ClassVar[str] = "chaos_injected"

    campaign: str
    job: str  # the spec's content hash
    action: str  # crash / hang / corrupt


@dataclass(frozen=True, slots=True)
class CampaignInterrupted(TelemetryEvent):
    """A campaign stopped on SIGINT/SIGTERM; completed work is durable."""

    kind: ClassVar[str] = "campaign_interrupted"

    campaign: str
    signal: str  # "SIGINT" / "SIGTERM"
    completed: int
    pending: int


@dataclass(frozen=True, slots=True)
class LeaseAcquired(TelemetryEvent):
    """A worker claimed one campaign job via the lease protocol.

    ``token`` is the job's fencing token (its lifetime acquisition
    count); ``reclaimed`` distinguishes a takeover of a dead worker's
    lease from a first claim.
    """

    kind: ClassVar[str] = "lease_acquired"

    campaign: str
    job: str  # the spec's content hash
    owner: str
    token: int
    reclaimed: bool
    at: float  # wall clock, comparable across workers


@dataclass(frozen=True, slots=True)
class LeaseExpired(TelemetryEvent):
    """A lease outlived its ttl and was taken over by a peer.

    ``owner``/``token`` name the presumed-dead holder, ``by`` the worker
    that noticed, ``age`` how stale the last heartbeat was (by the
    noticing worker's clock).
    """

    kind: ClassVar[str] = "lease_expired"

    campaign: str
    job: str
    owner: str
    token: int
    age: float
    by: str
    at: float


@dataclass(frozen=True, slots=True)
class JobQuarantined(TelemetryEvent):
    """A job exhausted its lease-reclaim budget and was parked.

    ``owners`` lists the worker that died (or failed) on each attempt,
    oldest first — the crash-loop fingerprint ``repro inspect`` shows.
    """

    kind: ClassVar[str] = "job_quarantined"

    campaign: str
    job: str
    attempts: int
    owners: list[str]
    at: float


def _int_keys(table: dict) -> dict[int, Any]:
    """JSON objects stringify integer keys; undo that on replay."""
    return {int(key): value for key, value in table.items()}


#: kind -> event class, for deserialisation.
EVENT_TYPES: dict[str, type[TelemetryEvent]] = {
    cls.kind: cls
    for cls in (
        RunMeta,
        AccessSampled,
        RemoteSearch,
        ResizeDecision,
        MoleculeGranted,
        MoleculeWithdrawn,
        MoleculeRemapped,
        EpochRollover,
        AuditReport,
        JobSubmitted,
        JobStarted,
        JobRetried,
        JobCompleted,
        FaultInjected,
        MoleculeRetired,
        RegionRepaired,
        TenantEpochSnapshot,
        TenantRunSummary,
        ChaosInjected,
        CampaignInterrupted,
        LeaseAcquired,
        LeaseExpired,
        JobQuarantined,
    )
}


def event_from_dict(payload: dict[str, Any]) -> TelemetryEvent | None:
    """Rebuild an event from its ``as_dict`` form.

    Returns ``None`` for unknown kinds so replay tolerates streams written
    by newer versions of the library.
    """
    data = dict(payload)
    kind = data.pop("kind", None)
    cls = EVENT_TYPES.get(kind)
    if cls is None:
        return None
    return cls.from_payload(data)
