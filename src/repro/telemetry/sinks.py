"""Event sinks: in-memory ring buffer and JSONL persistence.

A sink is anything with ``emit(event)``; ``close()`` is optional. The two
bundled sinks cover the interactive and the post-mortem workflow:

* :class:`RingBufferSink` keeps the last N events in memory — attach one
  in a REPL or a test and look at ``.events()`` afterwards.
* :class:`JsonlSink` streams every event to a JSON-Lines file that
  ``python -m repro inspect`` (see :mod:`repro.telemetry.replay`) can
  rebuild timelines from.
"""

from __future__ import annotations

import json
from collections import deque
from collections.abc import Iterator
from pathlib import Path

from repro.common.errors import ConfigError
from repro.telemetry.events import TelemetryEvent, event_from_dict


class RingBufferSink:
    """Keeps the most recent ``capacity`` events, evicting the oldest."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ConfigError("ring buffer capacity must be >= 1")
        self.capacity = capacity
        self._buffer: deque[TelemetryEvent] = deque(maxlen=capacity)
        #: Events discarded because the buffer was full.
        self.dropped = 0

    def emit(self, event: TelemetryEvent) -> None:
        if len(self._buffer) == self.capacity:
            self.dropped += 1
        self._buffer.append(event)

    def events(self) -> list[TelemetryEvent]:
        """Buffered events, oldest first."""
        return list(self._buffer)

    def clear(self) -> None:
        self._buffer.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._buffer)

    def __iter__(self) -> Iterator[TelemetryEvent]:
        return iter(self._buffer)


class JsonlSink:
    """Writes one JSON object per event to ``path`` (JSON Lines)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        try:
            self._fh = self.path.open("w", encoding="utf-8")
        except OSError as error:
            raise ConfigError(
                f"cannot record telemetry to {self.path}: {error}"
            ) from None
        #: Events written so far.
        self.count = 0

    def emit(self, event: TelemetryEvent) -> None:
        if self._fh is None:
            raise ConfigError(f"telemetry sink {self.path} is closed")
        self._fh.write(json.dumps(event.as_dict(), separators=(",", ":")))
        self._fh.write("\n")
        self.count += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def read_events(path: str | Path) -> Iterator[TelemetryEvent]:
    """Yield the events recorded in a JSONL file, in stream order.

    Unknown event kinds (from a newer writer) and blank lines are skipped;
    a syntactically broken line raises :class:`ConfigError` with its line
    number, since a truncated recording usually means the producing run
    never closed its bus.
    """
    path = Path(path)
    if not path.exists():
        raise ConfigError(f"no telemetry recording at {path}")
    with path.open("r", encoding="utf-8") as fh:
        for line_number, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                raise ConfigError(
                    f"{path}:{line_number}: broken telemetry line ({error}); "
                    "was the recording bus closed?"
                ) from None
            event = event_from_dict(payload)
            if event is not None:
                yield event
