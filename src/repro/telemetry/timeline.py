"""Per-region metric timelines assembled from epoch rollovers.

:class:`MetricsTimeline` is a sink that keeps only the
:class:`~repro.telemetry.events.EpochRollover` events — the periodic
per-region snapshots — and turns them into the time-resolved views the
paper plots: miss rate, molecule count, occupancy and hits-per-molecule
per epoch. It works identically attached to a live bus or fed from a
replayed JSONL stream, which is how ``python -m repro inspect`` renders
its tables.
"""

from __future__ import annotations

from repro.telemetry.events import EpochRollover, TelemetryEvent

#: Metric key -> table float format.
METRIC_FORMATS = {
    "miss_rate": "{:.3f}",
    "molecules": "{:d}",
    "occupancy": "{:.3f}",
    "hpm": "{:.4f}",
    "accesses": "{:d}",
}


class MetricsTimeline:
    """Accumulates epoch snapshots; renders per-region metric tables."""

    def __init__(self) -> None:
        self.epochs: list[EpochRollover] = []

    # ----------------------------------------------------------------- sink

    def emit(self, event: TelemetryEvent) -> None:
        if isinstance(event, EpochRollover):
            self.epochs.append(event)

    # ------------------------------------------------------------ accessors

    def __len__(self) -> int:
        return len(self.epochs)

    def asids(self) -> list[int]:
        """Every ASID that appears in any epoch, ascending."""
        seen: set[int] = set()
        for epoch in self.epochs:
            seen.update(epoch.regions)
        return sorted(seen)

    def series(self, asid: int, metric: str) -> list[float | None]:
        """One metric's value per epoch for one region (None when absent)."""
        return [epoch.regions.get(asid, {}).get(metric) for epoch in self.epochs]

    def peak(self, asid: int, metric: str) -> float:
        values = [v for v in self.series(asid, metric) if v is not None]
        return max(values) if values else 0.0

    def mean(self, asid: int, metric: str) -> float:
        values = [v for v in self.series(asid, metric) if v is not None]
        return sum(values) / len(values) if values else 0.0

    def time_to_goal(self, asid: int) -> int | None:
        """First epoch (1-based) whose miss rate met the region's goal."""
        for epoch in self.epochs:
            snapshot = epoch.regions.get(asid)
            if snapshot is None:
                continue
            goal = snapshot.get("goal")
            if goal is None:
                return None
            if snapshot.get("accesses") and snapshot["miss_rate"] <= goal:
                return epoch.epoch
        return None

    # ------------------------------------------------------------ rendering

    def metric_table(
        self, metric: str, title: str | None = None, max_rows: int | None = None
    ) -> str:
        """Render one metric as an epoch-by-region table."""
        from repro.sim.report import format_table

        asids = self.asids()
        cell_format = METRIC_FORMATS.get(metric, "{:.3f}")
        rows = []
        epochs = self.epochs if max_rows is None else self.epochs[:max_rows]
        for epoch in epochs:
            row: list[object] = [epoch.epoch, epoch.seq]
            for asid in asids:
                value = epoch.regions.get(asid, {}).get(metric)
                row.append("-" if value is None else cell_format.format(value))
            rows.append(row)
        table = format_table(
            ["epoch", "accesses", *[f"asid {a}" for a in asids]],
            rows,
            title=title or f"per-region {metric} by epoch",
        )
        if max_rows is not None and len(self.epochs) > max_rows:
            table += f"\n... {len(self.epochs) - max_rows} more epochs"
        return table
