"""Telemetry: structured event tracing for the molecular-cache simulator.

The paper's interesting artifacts are *time-resolved* — Figure 6 plots
hits-per-molecule over a run, Algorithm 1 grants and withdraws molecules
on periodic epochs — so this package records what the end-of-run counters
cannot show: an :class:`EventBus` of typed events (resize decisions,
grants/withdrawals, remote searches, epoch metric snapshots) with
pluggable sinks (in-memory ring buffer, JSONL file, per-region metric
timelines) and a replay layer that powers ``python -m repro inspect``.

Design constraint: when no bus is attached the simulator's hot access
loop pays exactly one attribute check (``cache.telemetry is None``) —
see :mod:`repro.telemetry.bus` and the overhead guard in
``benchmarks/test_perf_telemetry_overhead.py``.

Quick start::

    from repro.telemetry import EventBus, JsonlSink, MetricsTimeline

    timeline = MetricsTimeline()
    bus = EventBus([JsonlSink("events.jsonl"), timeline], epoch_refs=5_000)
    cache.attach_telemetry(bus)
    ...  # run the workload
    bus.close()
    print(timeline.metric_table("miss_rate"))

The replay helpers (:func:`load_report`, :func:`replay_events`,
:class:`InspectReport`) are exported lazily to keep instrumented modules
(`molecular/cache.py`, `molecular/resize.py`) free of sim-layer imports.
"""

from __future__ import annotations

from repro.telemetry.bus import EventBus, attach_telemetry
from repro.telemetry.events import (
    EVENT_TYPES,
    AccessSampled,
    EpochRollover,
    JobCompleted,
    JobRetried,
    JobStarted,
    JobSubmitted,
    MoleculeGranted,
    MoleculeWithdrawn,
    RemoteSearch,
    ResizeDecision,
    RunMeta,
    TelemetryEvent,
    event_from_dict,
)
from repro.telemetry.sinks import JsonlSink, RingBufferSink, read_events
from repro.telemetry.timeline import MetricsTimeline

_REPLAY_EXPORTS = ("InspectReport", "load_report", "replay_events")

__all__ = [
    "AccessSampled",
    "EpochRollover",
    "EVENT_TYPES",
    "EventBus",
    "InspectReport",
    "JobCompleted",
    "JobRetried",
    "JobStarted",
    "JobSubmitted",
    "JsonlSink",
    "MetricsTimeline",
    "MoleculeGranted",
    "MoleculeWithdrawn",
    "RemoteSearch",
    "ResizeDecision",
    "RingBufferSink",
    "RunMeta",
    "TelemetryEvent",
    "attach_telemetry",
    "event_from_dict",
    "load_report",
    "read_events",
    "replay_events",
]


def __getattr__(name: str):
    if name in _REPLAY_EXPORTS:
        from repro.telemetry import replay

        return getattr(replay, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
