"""The event bus: guarded emission with zero overhead when disabled.

The contract with the hot access loop is strict: an uninstrumented run
keeps ``cache.telemetry is None`` and the *only* added cost per access is
that single attribute check (``benchmarks/test_perf_telemetry_overhead.py``
guards this). Everything else — sequence numbering, sampling, epoch
accounting — lives behind the check, inside :meth:`EventBus.record_access`.

The bus owns the run's *epoch clock*: every ``epoch_refs`` accesses it
snapshots each region's epoch-local miss rate, molecule count and
occupancy into an :class:`~repro.telemetry.events.EpochRollover` event, so
a recorded JSONL stream contains the full metric timeline and can be
replayed without the cache that produced it.
"""

from __future__ import annotations

from repro.common.errors import ConfigError
from repro.telemetry.events import (
    AccessSampled,
    EpochRollover,
    RemoteSearch,
    TelemetryEvent,
)


class EventBus:
    """Dispatches telemetry events to a set of sinks.

    Parameters
    ----------
    sinks:
        Objects with an ``emit(event)`` method (and optionally ``close()``):
        :class:`~repro.telemetry.sinks.RingBufferSink`,
        :class:`~repro.telemetry.sinks.JsonlSink`,
        :class:`~repro.telemetry.timeline.MetricsTimeline`, or anything
        else matching the protocol.
    epoch_refs:
        Accesses per metrics epoch; 0 disables epoch rollovers.
    sample_interval:
        Emit an :class:`AccessSampled` every Nth access; 0 disables.
    remote_search_sample:
        Emit every Nth :class:`RemoteSearch` (1 = all); remote searches
        can dominate a stream on span-heavy regions, so this subsamples
        them without touching the epoch aggregates.
    """

    __slots__ = (
        "sinks",
        "epoch_refs",
        "sample_interval",
        "remote_search_sample",
        "access_seq",
        "epoch",
        "events_emitted",
        "_cache",
        "_region_marks",
        "_probe_mark",
        "_remote_seen",
        "_last_rollover_seq",
    )

    def __init__(
        self,
        sinks=(),
        epoch_refs: int = 10_000,
        sample_interval: int = 0,
        remote_search_sample: int = 1,
    ) -> None:
        if epoch_refs < 0 or sample_interval < 0:
            raise ConfigError("telemetry intervals cannot be negative")
        if remote_search_sample < 1:
            raise ConfigError("remote_search_sample must be >= 1")
        self.sinks = list(sinks)
        self.epoch_refs = epoch_refs
        self.sample_interval = sample_interval
        self.remote_search_sample = remote_search_sample
        self.access_seq = 0
        self.epoch = 0
        self.events_emitted = 0
        self._cache = None
        self._region_marks: dict[int, tuple[int, int]] = {}
        self._probe_mark: tuple[int, int] = (0, 0)
        self._remote_seen = 0
        self._last_rollover_seq = 0

    # ------------------------------------------------------------- plumbing

    def add_sink(self, sink) -> None:
        self.sinks.append(sink)

    def bind_cache(self, cache) -> None:
        """Bind the cache whose regions epoch snapshots are taken from."""
        self._cache = cache

    def emit(self, event: TelemetryEvent) -> None:
        """Deliver one event to every sink."""
        self.events_emitted += 1
        for sink in self.sinks:
            sink.emit(event)

    def flush_epoch(self) -> None:
        """Emit a rollover for a partial tail epoch (run teardown)."""
        if self._cache is not None and self.access_seq > self._last_rollover_seq:
            self.rollover()

    def close(self) -> None:
        """Flush the tail epoch and close every sink that supports it."""
        self.flush_epoch()
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()

    def __enter__(self) -> "EventBus":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------- hot path

    def record_access(self, asid, block, write, result, remote_tiles) -> None:
        """Per-access bookkeeping; called only when telemetry is attached."""
        seq = self.access_seq + 1
        self.access_seq = seq
        interval = self.sample_interval
        if interval and seq % interval == 0:
            self.emit(
                AccessSampled(
                    seq=seq,
                    asid=asid,
                    block=block,
                    hit=result.hit,
                    write=write,
                    local_probes=result.molecules_probed_local,
                    remote_probes=result.molecules_probed_remote,
                )
            )
        if remote_tiles:
            self._remote_seen += 1
            if self._remote_seen % self.remote_search_sample == 0:
                self.emit(
                    RemoteSearch(
                        seq=seq,
                        asid=asid,
                        tiles_searched=remote_tiles,
                        molecules_probed=result.molecules_probed_remote,
                        found=result.hit,
                    )
                )
        if self.epoch_refs and seq % self.epoch_refs == 0:
            self.rollover()

    # --------------------------------------------------------------- epochs

    def rollover(self) -> None:
        """Close the current epoch: snapshot regions, emit the event."""
        self.epoch += 1
        self._last_rollover_seq = self.access_seq
        regions: dict[int, dict] = {}
        mean_probed = 0.0
        free = 0
        cache = self._cache
        if cache is not None:
            for asid, region in sorted(cache.regions.items()):
                prev_accesses, prev_misses = self._region_marks.get(asid, (0, 0))
                accesses = region.total_accesses - prev_accesses
                misses = region.total_misses - prev_misses
                self._region_marks[asid] = (
                    region.total_accesses,
                    region.total_misses,
                )
                if accesses < 0:  # counters were reset mid-run (warm-up)
                    accesses, misses = region.total_accesses, region.total_misses
                miss_rate = misses / accesses if accesses > 0 else 0.0
                molecules = region.molecule_count
                hpm = 0.0
                if molecules and accesses:
                    hpm = (1.0 - miss_rate) / molecules
                regions[asid] = {
                    "accesses": accesses,
                    "miss_rate": miss_rate,
                    "molecules": molecules,
                    "occupancy": region.occupancy_fraction(),
                    "goal": region.goal,
                    "hpm": hpm,
                }
            stats = cache.stats
            probe_mark, access_mark = self._probe_mark
            probes = stats.molecules_probed - probe_mark
            accesses = stats.total.accesses - access_mark
            self._probe_mark = (stats.molecules_probed, stats.total.accesses)
            if accesses > 0 and probes >= 0:
                mean_probed = probes / accesses
            free = cache.free_molecules()
        self.emit(
            EpochRollover(
                epoch=self.epoch,
                seq=self.access_seq,
                mean_molecules_probed=mean_probed,
                free_molecules=free,
                regions=regions,
            )
        )


def attach_telemetry(cache, bus: EventBus | None) -> bool:
    """Attach ``bus`` to any cache that supports telemetry.

    Returns True when the cache accepted the bus; drivers call this so the
    same code path works for molecular and traditional caches (the latter
    simply run unrecorded).
    """
    if bus is None:
        return False
    attach = getattr(cache, "attach_telemetry", None)
    if attach is None:
        return False
    attach(bus)
    return True
