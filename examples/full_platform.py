#!/usr/bin/env python
"""Full-platform demo: coherent cores over a molecular L2.

Composes every layer of the library — per-core L1s kept coherent by a
snooping MESI bus, a molecular last-level cache with per-application
regions, and latency-driven core timing — and compares per-core
throughput against the same cores over a shared traditional L2.

Run:
    python examples/full_platform.py
"""

import numpy as np

from repro import SetAssociativeCache
from repro.molecular import MolecularCache, MolecularCacheConfig, ResizePolicy
from repro.sim.platform import CMPPlatform, PlatformConfig
from repro.trace.container import Trace
from repro.workloads import BenchmarkModel, RingComponent

REFS = 150_000
CORES = 4

# Two cache-friendly cores, two capacity-hungry streaming cores.
MODELS = {
    0: BenchmarkModel("friendly-a", (RingComponent(0.97, 1_500, 8),
                                     RingComponent(0.03, 1 << 21, 1))),
    1: BenchmarkModel("friendly-b", (RingComponent(0.97, 2_000, 8),
                                     RingComponent(0.03, 1 << 21, 1))),
    2: BenchmarkModel("stream-a", (RingComponent(1.0, 20_000, 32),)),
    3: BenchmarkModel("stream-b", (RingComponent(1.0, 24_000, 32),)),
}


def build_traces() -> dict[int, Trace]:
    return {
        core: model.generate(REFS, seed=7, asid=core)
        for core, model in MODELS.items()
    }


def report(label: str, platform: CMPPlatform, result) -> None:
    print(f"\n{label}")
    for core in sorted(result.cores):
        r = result.cores[core]
        print(
            f"  core {core} ({MODELS[core].name:10s}): "
            f"{r.references_per_kcycle:7.1f} refs/kcycle, "
            f"L1 hit rate {r.l1_hit_rate:.3f}"
        )
    bus = platform.bus.stats
    print(f"  coherence: {bus.bus_transactions} bus transactions, "
          f"{bus.invalidations_received} invalidations")


def main() -> None:
    config = PlatformConfig(l1_size_bytes=8 * 1024, l1_associativity=2,
                            warmup_refs=CORES * REFS // 8)
    traces = build_traces()

    # --- traditional shared L2 ------------------------------------------
    shared = CMPPlatform(CORES, SetAssociativeCache(2 << 20, 4), config)
    result = shared.run(traces)
    report("Shared 2MB 4-way L2:", shared, result)
    baseline = {c: result.throughput(c) for c in range(CORES)}

    # --- molecular L2 with per-core regions ------------------------------
    l2_config = MolecularCacheConfig.for_total_size(
        2 << 20, clusters=1, tiles_per_cluster=4
    )
    molecular = MolecularCache(l2_config, resize_policy=ResizePolicy())
    # QoS goals for the cache-friendly cores; the hopeless streamers are
    # left unmanaged (they keep their initial half-tile and cannot crowd
    # out the managed regions).
    goals = {0: 0.10, 1: 0.10, 2: None, 3: None}
    for core in range(CORES):
        molecular.assign_application(core, goal=goals[core], tile_id=core)
    platform = CMPPlatform(CORES, molecular, config)
    result = platform.run(traces)
    report("Molecular 2MB L2 (10% goals):", platform, result)

    print("\nMolecular L2 partitions:")
    for core, size in molecular.partition_sizes().items():
        region = molecular.regions[core]
        goal_text = f"goal {region.goal:.0%}" if region.goal else "unmanaged"
        print(f"  core {core} ({MODELS[core].name:10s}): {size:3d} molecules, "
              f"L2 miss rate {region.miss_rate:.3f} ({goal_text})")

    print("\nThroughput change vs the shared baseline:")
    for core in range(CORES):
        change = result.throughput(core) / baseline[core] - 1.0
        print(f"  core {core} ({MODELS[core].name:10s}): {change:+.1%}")
    print(
        "\nThe molecular L2's value is QoS: the managed cores sit at their "
        "miss-rate\ngoals inside guaranteed partitions, immune to the "
        "streamers. The paper\nevaluates exactly this (deviation from goal, "
        "and dynamic power) — raw access\nlatency is the trade-off: the "
        "ASID stage and hierarchical search add cycles,\nwhich this "
        "platform model charges faithfully."
    )


if __name__ == "__main__":
    main()
