#!/usr/bin/env python
"""Power study: the CACTI-like model and molecular energy accounting.

Explores the analytical model the reproduction uses in place of CACTI 3.2:
per-access energy and access time across sizes and associativities, the
per-molecule probe cost, and a measured average-power estimate for a
molecular cache under real traffic (the Table 4 methodology).

Run:
    python examples/power_study.py
"""

from repro import (
    CacheOrganization,
    CactiModel,
    MolecularCache,
    MolecularCacheConfig,
    MolecularEnergyModel,
    ResizePolicy,
)
from repro.sim.report import format_table
from repro.workloads import get_model


def sweep_traditional(model: CactiModel) -> None:
    rows = []
    for size_mb in (1, 2, 4, 8):
        for assoc in (1, 2, 4, 8):
            evaluation = model.evaluate(
                CacheOrganization(size_mb << 20, assoc, 64, ports=4)
            )
            rows.append(
                [
                    f"{size_mb}MB {assoc}-way",
                    evaluation.access_time_ns,
                    evaluation.frequency_mhz,
                    evaluation.energy_nj,
                    evaluation.power_watts(),
                ]
            )
    print(
        format_table(
            ["cache", "t_access ns", "f MHz", "E/access nJ", "power W"],
            rows,
            title="Traditional 4-ported caches at 0.07um (analytical model)",
        )
    )


def molecule_costs(model: CactiModel) -> None:
    rows = []
    for molecule_kb in (8, 16, 32):
        org = CacheOrganization(molecule_kb * 1024, 1, 64, ports=1)
        evaluation = model.evaluate(org)
        rows.append(
            [f"{molecule_kb}KB molecule", evaluation.access_time_ns,
             evaluation.energy_nj]
        )
    print()
    print(
        format_table(
            ["unit", "t_access ns", "E/probe nJ"],
            rows,
            title="Molecule probe costs (direct mapped, single port)",
            float_format="{:.3f}",
        )
    )


def measured_average_power(model: CactiModel) -> None:
    # Run a two-application mix on the paper's 8MB geometry and integrate
    # the recorded probe counters into an average power figure.
    config = MolecularCacheConfig()  # Table 3 defaults: 8MB
    cache = MolecularCache(config, resize_policy=ResizePolicy())
    cache.assign_application(0, goal=0.15, tile_id=0)
    cache.assign_application(1, goal=0.15, tile_id=4)  # second cluster
    for asid, name in ((0, "ammp"), (1, "gzip")):
        trace = get_model(name).generate(150_000, seed=2, asid=asid)
        for block in trace.blocks().tolist():
            cache.access_block(block, asid)

    energy = MolecularEnergyModel(config, model)
    frequency = 200.0  # MHz, the traditional baseline's clock
    print()
    print("Molecular cache energy accounting (8MB, two active applications):")
    print(f"  mean molecules probed per access: "
          f"{cache.stats.mean_molecules_probed():.1f} "
          f"(worst case: {config.molecules_per_tile})")
    print(f"  worst-case power  @200MHz: {energy.worst_case_power_w(frequency):.2f} W")
    print(f"  measured average  @200MHz: "
          f"{energy.average_power_w(cache.stats, frequency):.2f} W")
    print(
        "  -> selective (ASID-gated) molecule enablement is where the "
        "paper's ~29%\n     power advantage over an 8MB 8-way cache comes from."
    )


def main() -> None:
    model = CactiModel()
    sweep_traditional(model)
    molecule_costs(model)
    measured_average_power(model)


if __name__ == "__main__":
    main()
