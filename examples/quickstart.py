#!/usr/bin/env python
"""Quickstart: build a molecular cache, give two applications QoS goals,
run synthetic traffic, and watch the partitions adapt.

Run:
    python examples/quickstart.py
"""

from repro import MolecularCache, MolecularCacheConfig, ResizePolicy
from repro.workloads import BenchmarkModel, RingComponent


def main() -> None:
    # A 2 MB molecular cache: 8 KB direct-mapped molecules, 4 tiles of
    # 512 KB in one cluster (the paper's building blocks, Table 3 style).
    config = MolecularCacheConfig(
        molecule_bytes=8 * 1024,
        molecules_per_tile=64,
        tiles_per_cluster=4,
        clusters=1,
    )
    cache = MolecularCache(config, resize_policy=ResizePolicy(period=25_000))

    # Two applications with very different appetites, each pinned to its
    # own tile and given a 10% miss-rate goal.
    cache.assign_application(asid=0, goal=0.10, tile_id=0)
    cache.assign_application(asid=1, goal=0.10, tile_id=1)

    # Application 0: small hot set (fits easily). Application 1: streams
    # over ~1.5 MB (needs to grow its partition).
    small = BenchmarkModel(
        name="small",
        components=(
            RingComponent(weight=0.96, blocks=2_000, run_length=8),
            # a sliver of compulsory misses, so the partition's miss rate
            # is measurable and the withdraw rule has signal to act on
            RingComponent(weight=0.04, blocks=1 << 21, run_length=1),
        ),
    )
    large = BenchmarkModel(
        name="large",
        components=(RingComponent(weight=1.0, blocks=24_000, run_length=16),),
    )

    print(f"{'refs':>8}  {'app0 mols':>9}  {'app1 mols':>9}  "
          f"{'app0 miss':>9}  {'app1 miss':>9}  {'free':>5}")
    traces = {
        0: small.generate(200_000, seed=1, asid=0).blocks().tolist(),
        1: large.generate(200_000, seed=1, asid=1).blocks().tolist(),
    }
    for step in range(10):
        lo, hi = step * 20_000, (step + 1) * 20_000
        for asid in (0, 1):
            for block in traces[asid][lo:hi]:
                cache.access_block(block, asid)
        sizes = cache.partition_sizes()
        print(
            f"{(step + 1) * 40_000:>8}  {sizes[0]:>9}  {sizes[1]:>9}  "
            f"{cache.stats.miss_rate(0):>9.3f}  {cache.stats.miss_rate(1):>9.3f}  "
            f"{cache.free_molecules():>5}"
        )

    print("\nFinal partition report:")
    report = cache.occupancy_report()
    for asid, info in report["partitions"].items():
        print(
            f"  app {asid}: {info['molecules']} molecules in "
            f"{info['rows']} rows across tiles {sorted(info['tiles'])}, "
            f"miss rate {info['miss_rate']:.3f} (goal {info['goal']})"
        )
    print(f"  free molecules: {report['free_molecules']}")
    print(f"  resize events: {report['resize_events']}")
    print(
        "\nThe resize engine (Algorithm 1) shrank the small application "
        "toward its goal\nand grew the streaming application, without any "
        "inter-application interference."
    )


if __name__ == "__main__":
    main()
