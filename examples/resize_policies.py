#!/usr/bin/env python
"""Resize-policy explorer: watch Algorithm 1 react to a phase change.

A single application with two program phases (the working set drifts to
fresh addresses halfway through the run) is driven against molecular
caches with different resize triggers. The per-window partition size and
miss rate show how each trigger tracks the phase change.

Run:
    python examples/resize_policies.py
"""

from repro.molecular import MolecularCache, MolecularCacheConfig, ResizePolicy
from repro.workloads import BenchmarkModel, RingComponent

PHASED = BenchmarkModel(
    name="phased",
    components=(
        # the hot set moves to entirely new addresses at the phase change
        RingComponent(weight=0.80, blocks=6_000, run_length=8, drift=True),
        RingComponent(weight=0.17, blocks=600, run_length=4),
        RingComponent(weight=0.03, blocks=1 << 21, run_length=1),
    ),
    phases=2,
)
REFS = 300_000
WINDOW = 25_000
GOAL = 0.15


def run(trigger: str) -> list[tuple[int, int, float]]:
    config = MolecularCacheConfig.for_total_size(
        1 << 20, clusters=1, tiles_per_cluster=4
    )
    cache = MolecularCache(
        config, resize_policy=ResizePolicy(trigger=trigger), placement="randy"
    )
    region = cache.assign_application(0, goal=GOAL, tile_id=0)
    trace = PHASED.generate(REFS, seed=4, asid=0)
    samples = []
    blocks = trace.blocks().tolist()
    for start in range(0, REFS, WINDOW):
        window_miss = 0
        for block in blocks[start : start + WINDOW]:
            window_miss += cache.access_block(block, 0).miss
        samples.append(
            (start + WINDOW, region.molecule_count, window_miss / WINDOW)
        )
    return samples


def main() -> None:
    runs = {trigger: run(trigger) for trigger in
            ("constant", "global_adaptive", "per_app_adaptive")}
    print(f"Phase change at reference {REFS // 2:,} "
          f"(working set moves to fresh addresses); goal = {GOAL:.0%}\n")
    header = f"{'refs':>8}"
    for trigger in runs:
        header += f"  | {trigger:^24}"
    print(header)
    sub = f"{'':>8}"
    for _ in runs:
        sub += f"  | {'molecules':>10} {'miss':>10}"
    print(sub)
    for index in range(REFS // WINDOW):
        row = f"{(index + 1) * WINDOW:>8}"
        for samples in runs.values():
            refs, molecules, miss = samples[index]
            row += f"  | {molecules:>10} {miss:>10.3f}"
        print(row)

    print(
        "\nAll triggers grow the partition back after the phase change; the "
        "adaptive\nschemes shorten their period while the goal is missed "
        "(reacting within a\nwindow or two) and stretch it once the miss "
        "rate settles — the behaviour\nsection 3.4 of the paper describes."
    )


if __name__ == "__main__":
    main()
