#!/usr/bin/env python
"""Multiprogrammed QoS: the paper's core scenario on a small scale.

Four SPEC-like applications (art, ammp, parser, mcf) share a last-level
cache on a CMP. We compare:

1. a traditional shared 4 MB 4-way LRU cache (inter-application
   interference, no QoS control), and
2. a 4 MB molecular cache with a 10% miss-rate goal for art/ammp/parser
   (mcf left unmanaged, as in Figure 5 graph B),

both driven through the throttled CMP execution model.

Run:
    python examples/multiprogram_qos.py
"""

from repro import CMPRunConfig, CMPRunner, SetAssociativeCache
from repro.analysis.metrics import average_deviation, deviations
from repro.molecular import MolecularCache, MolecularCacheConfig, ResizePolicy
from repro.workloads import spec_model

APPS = ("art", "ammp", "parser", "mcf")
GOALS = {0: 0.10, 1: 0.10, 2: 0.10, 3: None}  # mcf unmanaged
REFS = 300_000


def build_traces():
    return {
        asid: spec_model(name).generate(REFS, seed=1, asid=asid)
        for asid, name in enumerate(APPS)
    }


def show(label: str, miss_rates: dict[int, float]) -> None:
    print(f"\n{label}")
    per_app = deviations(miss_rates, GOALS)
    for asid, name in enumerate(APPS):
        goal = GOALS[asid]
        goal_text = f"goal {goal:.0%}, deviation {per_app[asid]:.3f}" if goal else "unmanaged"
        print(f"  {name:8s} miss rate {miss_rates[asid]:.3f}  ({goal_text})")
    print(f"  average deviation: {average_deviation(miss_rates, GOALS):.3f}")


def main() -> None:
    traces = build_traces()
    run_config = CMPRunConfig(miss_penalty=10, warmup_refs=REFS)

    # --- baseline: shared traditional cache -----------------------------
    shared = SetAssociativeCache(4 << 20, 4, name="4MB 4-way shared")
    result = CMPRunner(shared, run_config).run(traces)
    show("Shared 4MB 4-way LRU (no isolation):", result.miss_rates())

    # --- molecular cache with per-application regions -------------------
    config = MolecularCacheConfig.for_total_size(
        4 << 20, clusters=1, tiles_per_cluster=4
    )
    molecular = MolecularCache(config, resize_policy=ResizePolicy())
    for asid in range(len(APPS)):
        molecular.assign_application(asid, goal=GOALS[asid], tile_id=asid)
    result = CMPRunner(molecular, run_config).run(traces)
    show("4MB molecular cache (Randy, 10% goals, mcf unmanaged):", result.miss_rates())

    print("\nPartition sizes after the run (molecules of 8KB):")
    for asid, size in molecular.partition_sizes().items():
        print(f"  {APPS[asid]:8s} {size:4d} molecules ({size * 8} KB)")
    print(f"  free: {molecular.free_molecules()} molecules")
    print(
        "\nThe molecular cache trades mcf's hopeless stream for guaranteed "
        "goals on the\nthree manageable applications — the behaviour behind "
        "Figure 5 graph B."
    )


if __name__ == "__main__":
    main()
